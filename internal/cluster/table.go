package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"temco/internal/guard"
	"temco/internal/obs"
)

// Table is the probed replica set. Membership is live: Add admits a new
// replica in StateJoining (it must pass probation probes before taking
// traffic), Remove deletes one immediately, and Drain runs the graceful
// decommission protocol. Start launches the prober loop; Close stops it.
// Safe for concurrent use by the prober, the router, admin handlers, and
// stats scrapes.
type Table struct {
	cfg Config
	met *metrics
	now func() time.Time // injectable clock for deterministic tests

	mu       sync.RWMutex // guards the replicas slice (not the replicas themselves)
	replicas []*Replica

	started   atomic.Bool
	adHoc     sync.WaitGroup // one-off probation probes fired by Add
	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NormalizeURL canonicalizes a replica base URL the way the table stores
// it: trimmed, no trailing slash, http(s) scheme required. Every API that
// names a replica (Add, Remove, Drain, the temcor admin handlers, the
// replicas-file reconciler) normalizes through here, so the same backend
// can never appear twice under cosmetically different spellings.
func NormalizeURL(u string) (string, error) {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return "", guard.Errorf(guard.ErrInvalidModel, "cluster", "empty replica URL")
	}
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		return "", guard.Errorf(guard.ErrInvalidModel, "cluster", "replica %q: want an http(s) URL", u)
	}
	return u, nil
}

// NewTable builds a table over the given replica base URLs (scheme://host:port,
// no trailing slash required). The prober does not run until Start.
func NewTable(urls []string, cfg Config) (*Table, error) {
	if len(urls) == 0 {
		return nil, guard.Errorf(guard.ErrInvalidModel, "cluster.NewTable", "no replicas")
	}
	cfg.applyDefaults()
	t := &Table{
		cfg:  cfg,
		now:  time.Now,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, u := range urls {
		u, err := NormalizeURL(u)
		if err != nil {
			return nil, guard.Errorf(guard.ErrInvalidModel, "cluster.NewTable", "%v", err)
		}
		if seen[u] {
			return nil, guard.Errorf(guard.ErrInvalidModel, "cluster.NewTable", "duplicate replica %q", u)
		}
		seen[u] = true
		// Until the first probe answers, a seed replica is degraded-suspect:
		// the router may use it if nothing healthy exists yet, and the first
		// probe round resolves the real state within ProbeInterval. Seed
		// replicas skip probation — a cold fleet must be able to serve its
		// first request before any probe lands.
		t.replicas = append(t.replicas, &Replica{url: u, state: StateDegraded})
	}
	t.met = newMetrics(t)
	return t, nil
}

// snapshot returns a stable copy of the current replica slice. Callers
// iterate the copy lock-free; element pointers stay valid even if the
// membership changes mid-iteration (a removed replica simply stops being
// probed or picked on the next snapshot).
func (t *Table) snapshot() []*Replica {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Replica, len(t.replicas))
	copy(out, t.replicas)
	return out
}

// lookup returns the live replica with the given (normalized) URL, or nil.
func (t *Table) lookup(url string) *Replica {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.replicas {
		if r.url == url {
			return r
		}
	}
	return nil
}

// Replicas returns a snapshot of the current replica set.
func (t *Table) Replicas() []*Replica { return t.snapshot() }

// Add admits a new replica into the live table in StateJoining. The
// replica takes no traffic until ProbationProbes consecutive successful
// probes promote it; if the prober is running, the first probation probe
// fires immediately rather than at the next ticker round.
func (t *Table) Add(url string) (*Replica, error) {
	u, err := NormalizeURL(url)
	if err != nil {
		return nil, err
	}
	r := &Replica{url: u, state: StateJoining, probation: true}
	t.mu.Lock()
	for _, ex := range t.replicas {
		if ex.url == u {
			t.mu.Unlock()
			return nil, guard.Errorf(guard.ErrInvalidModel, "cluster.Add", "replica %q already present", u)
		}
	}
	next := make([]*Replica, len(t.replicas), len(t.replicas)+1)
	copy(next, t.replicas)
	t.replicas = append(next, r)
	t.mu.Unlock()
	t.met.adds.Inc()
	if t.started.Load() {
		select {
		case <-t.stop:
			// Table already closing: leave the probe to nobody.
		default:
			t.adHoc.Add(1)
			go func() {
				defer t.adHoc.Done()
				t.probe(r)
			}()
		}
	}
	return r, nil
}

// Remove deletes a replica from the table immediately. In-flight probes or
// proxied requests holding the replica pointer finish harmlessly; the
// replica is simply absent from every subsequent snapshot. Use Drain for a
// graceful decommission.
func (t *Table) Remove(url string) error {
	u, err := NormalizeURL(url)
	if err != nil {
		return err
	}
	t.mu.Lock()
	for i, r := range t.replicas {
		if r.url == u {
			next := make([]*Replica, 0, len(t.replicas)-1)
			next = append(next, t.replicas[:i]...)
			next = append(next, t.replicas[i+1:]...)
			t.replicas = next
			t.mu.Unlock()
			t.met.removes.Inc()
			return nil
		}
	}
	t.mu.Unlock()
	return guard.Errorf(guard.ErrInvalidModel, "cluster.Remove", "replica %q not in the table", u)
}

// drainPoll is how often Drain re-checks the router-observed in-flight
// count while waiting for a draining replica to go idle.
const drainPoll = 5 * time.Millisecond

// Drain decommissions a replica gracefully:
//
//  1. The replica is marked draining with a sticky flag — pick stops
//     placing on it immediately (retries and hedges included), and no
//     probe outcome can return it to service.
//  2. The replica itself is told to stop admitting work (best-effort POST
//     /drainz), so directly-connected clients shed too and its admission
//     queue empties.
//  3. Drain waits for the router-observed in-flight count to reach zero,
//     bounded by ctx, then removes the replica from the table.
//
// On ctx expiry the replica is left in the table, still draining and
// still sticky, and a guard.ErrCanceled error reports the remaining
// in-flight count; the caller may retry Drain or force Remove. A request
// that raced placement onto the replica just before the mark is either
// completed before removal (Drain waited for it) or shed by the draining
// replica with a retryable 429/503 the router retries elsewhere — either
// way no request is lost to a graceful drain.
func (t *Table) Drain(ctx context.Context, url string) error {
	u, err := NormalizeURL(url)
	if err != nil {
		return err
	}
	r := t.lookup(u)
	if r == nil {
		return guard.Errorf(guard.ErrInvalidModel, "cluster.Drain", "replica %q not in the table", u)
	}
	r.mu.Lock()
	already := r.drainRequested
	r.drainRequested = true
	r.state = StateDraining
	r.mu.Unlock()
	if !already {
		t.met.drains.Inc()
	}
	t.notifyDrain(ctx, u)
	for {
		if inflight := r.inFlight.Load(); inflight == 0 {
			// Treat a concurrent Remove as success: the replica is gone.
			if err := t.Remove(u); err != nil && t.lookup(u) != nil {
				return err
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return guard.Errorf(guard.ErrCanceled, "cluster.Drain",
				"replica %q still has %d in-flight after drain wait: %v", u, r.inFlight.Load(), ctx.Err())
		case <-time.After(drainPoll):
		}
	}
}

// notifyDrain tells the replica itself to stop admitting new work (POST
// /drainz). Best-effort: a replica that is unreachable or predates the
// hook still drains from the router side alone, it just keeps accepting
// direct traffic until it is removed.
func (t *Table) notifyDrain(ctx context.Context, url string) {
	nctx, cancel := context.WithTimeout(ctx, t.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(nctx, http.MethodPost, url+"/drainz", nil)
	if err != nil {
		return
	}
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

// Status snapshots every replica for the /statsz table.
func (t *Table) Status() []ReplicaStatus {
	reps := t.snapshot()
	out := make([]ReplicaStatus, len(reps))
	for i, r := range reps {
		out[i] = r.snapshot()
	}
	return out
}

// Routable reports how many replicas can take traffic (healthy or
// degraded): the router's readiness signal. Joining and draining members
// do not count.
func (t *Table) Routable() int {
	n := 0
	for _, r := range t.snapshot() {
		if st := r.State(); st == StateHealthy || st == StateDegraded {
			n++
		}
	}
	return n
}

// MembershipStats summarizes live-membership activity for /statsz.
type MembershipStats struct {
	Replicas int    `json:"replicas"`
	Joining  int    `json:"joining"`
	Draining int    `json:"draining"`
	Adds     uint64 `json:"adds_total"`
	Removes  uint64 `json:"removes_total"`
	Drains   uint64 `json:"drains_total"`
}

// Membership returns the current membership summary.
func (t *Table) Membership() MembershipStats {
	ms := MembershipStats{
		Adds:    t.met.adds.Value(),
		Removes: t.met.removes.Value(),
		Drains:  t.met.drains.Value(),
	}
	for _, r := range t.snapshot() {
		ms.Replicas++
		switch r.State() {
		case StateJoining:
			ms.Joining++
		case StateDraining:
			ms.Draining++
		}
	}
	return ms
}

// Metrics returns the cluster registry (replica states, placements,
// retries, hedges, ejections, membership), ready for obs.Handler.
func (t *Table) Metrics() *obs.Registry { return t.met.reg }

// Start launches the prober loop: one immediate round, then a round every
// ProbeInterval. Idempotent.
func (t *Table) Start() {
	t.startOnce.Do(func() {
		t.started.Store(true)
		go func() {
			defer close(t.done)
			t.ProbeOnce()
			tick := time.NewTicker(t.cfg.ProbeInterval)
			defer tick.Stop()
			for {
				select {
				case <-t.stop:
					return
				case <-tick.C:
					t.ProbeOnce()
				}
			}
		}()
	})
}

// Close stops the prober and waits for it to exit. Idempotent; safe to
// call even when Start never ran.
func (t *Table) Close() {
	t.closeOnce.Do(func() { close(t.stop) })
	t.startOnce.Do(func() { close(t.done) }) // Start never ran: nothing to wait for
	<-t.done
	t.adHoc.Wait()
}

// ProbeOnce runs one probe round: every replica whose re-probe time has
// arrived is probed concurrently, and the round returns when all answers
// are in. The prober calls this on its ticker; tests call it directly for
// deterministic state transitions. A replica removed mid-round is still
// probed to completion once — harmless, its pointer just leaves the table.
func (t *Table) ProbeOnce() {
	now := t.now()
	var wg sync.WaitGroup
	for _, r := range t.snapshot() {
		r.mu.Lock()
		due := !r.nextProbe.After(now)
		r.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			t.probe(r)
		}(r)
	}
	wg.Wait()
}

// probe performs one /readyz round trip and reclassifies the replica.
func (t *Table) probe(r *Replica) {
	t.met.probes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/readyz", nil)
	if err != nil {
		t.probeFailed(r)
		return
	}
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		t.probeFailed(r)
		return
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		t.probeFailed(r)
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK && h.Ready:
		st := StateHealthy
		// A tripped breaker (the replica serves through its fallback) marks
		// the replica degraded: the fleet routes around it while anything
		// healthy remains, instead of piling load on its fallback path.
		if h.Degraded || (h.BreakerState != "" && h.BreakerState != "closed") {
			st = StateDegraded
		}
		t.probeOK(r, st, h)
	case resp.StatusCode == http.StatusServiceUnavailable && !h.Ready:
		// The process is alive and draining: not a failure, but no traffic.
		t.probeOK(r, StateDraining, h)
	default:
		t.probeFailed(r)
	}
}

// probeOK records a successful probe: the replica answered coherently, so
// the failure streak resets and the next probe is one interval out. A
// sticky drain always wins; a probation replica needs ProbationProbes
// consecutive successes before the probed state takes effect.
func (t *Table) probeOK(r *Replica, st State, h Health) {
	now := t.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateDead {
		t.met.revivals.Inc()
	}
	r.health = h
	r.lastOK = now
	r.consecFails = 0
	r.nextProbe = now.Add(t.cfg.ProbeInterval)
	switch {
	case r.drainRequested:
		// Decommission in progress: no probe outcome returns the replica
		// to service, even a clean ready=true answer.
		r.state = StateDraining
	case r.probation && st != StateDraining:
		r.probeStreak++
		if r.probeStreak >= t.cfg.ProbationProbes {
			r.probation = false
			r.state = st
		} else {
			r.state = StateJoining
		}
	default:
		// A joining replica that reports itself draining shows as draining
		// but keeps its probation: if it comes back ready it resumes the
		// probation streak, not traffic.
		r.state = st
	}
}

// probeFailed records a failed probe (connection error, timeout, garbage
// body). Below the threshold the replica turns degraded-suspect (joining
// replicas stay joining — probation never admits on a failure, and the
// streak resets); at the threshold it is ejected to StateDead and
// re-probed on an exponential backoff capped at MaxProbeBackoff.
func (t *Table) probeFailed(r *Replica) {
	t.met.probeFailures.Inc()
	now := t.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails++
	r.probeStreak = 0
	if r.consecFails < t.cfg.FailThreshold {
		if r.state != StateDead {
			switch {
			case r.drainRequested:
				r.state = StateDraining
			case r.probation:
				r.state = StateJoining
			default:
				r.state = StateDegraded
			}
		}
		r.nextProbe = now.Add(t.cfg.ProbeInterval)
		return
	}
	if r.state != StateDead {
		r.state = StateDead
		t.met.ejections.Inc()
	}
	shift := r.consecFails - t.cfg.FailThreshold
	if shift > 16 {
		shift = 16
	}
	backoff := t.cfg.ProbeInterval << uint(shift)
	if backoff > t.cfg.MaxProbeBackoff {
		backoff = t.cfg.MaxProbeBackoff
	}
	r.nextProbe = now.Add(backoff)
}

// pick chooses a replica for one attempt, excluding already-tried ones.
// Healthy replicas are preferred; degraded ones serve only when nothing
// healthy remains; joining, draining, and dead replicas never serve. Among
// the candidates, placement is least-loaded (last reported queue depth plus
// in-flight, sharpened by the router's own in-flight count); ties — and
// the whole decision when every candidate's health report has gone stale —
// fall back to rendezvous hashing on key, so a keyed workload keeps
// landing on the same replica as long as the fleet membership holds.
// Returns nil when no replica is available.
func (t *Table) pick(key string, exclude map[string]bool) *Replica {
	now := t.now()
	stale := now.Add(-3 * t.cfg.ProbeInterval)
	reps := t.snapshot()
	var candidates []*Replica
	fresh := 0
	for pass := 0; pass < 2 && len(candidates) == 0; pass++ {
		want := StateHealthy
		if pass == 1 {
			want = StateDegraded
		}
		for _, r := range reps {
			if exclude[r.url] {
				continue
			}
			r.mu.Lock()
			ok := r.state == want
			if ok && r.lastOK.After(stale) {
				fresh++
			}
			r.mu.Unlock()
			if ok {
				candidates = append(candidates, r)
			}
		}
	}
	switch len(candidates) {
	case 0:
		return nil
	case 1:
		return candidates[0]
	}
	if fresh == 0 {
		// Every load report is stale: depth numbers would be noise, so fall
		// back to pure rendezvous hashing for stable placement.
		return rendezvous(key, candidates)
	}
	best := candidates[:0:0]
	bestScore := int64(1<<63 - 1)
	for _, r := range candidates {
		r.mu.Lock()
		// BatchPending is load the replica holds in its coalescer window —
		// invisible to QueueDepth but a worker slot away from executing.
		score := int64(r.health.QueueDepth) + r.health.InFlight + r.health.BatchPending
		r.mu.Unlock()
		score += r.inFlight.Load()
		if score < bestScore {
			bestScore = score
			best = append(best[:0], r)
		} else if score == bestScore {
			best = append(best, r)
		}
	}
	if len(best) == 1 {
		return best[0]
	}
	return rendezvous(key, best)
}

// rendezvous picks the highest-random-weight replica for key: every
// observer with the same candidate set and key agrees on the winner, and
// removing a replica only moves the keys that lived on it.
func rendezvous(key string, candidates []*Replica) *Replica {
	var best *Replica
	var bestW uint64
	for _, r := range candidates {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s\x00%s", key, r.url)
		if w := h.Sum64(); best == nil || w > bestW {
			best, bestW = r, w
		}
	}
	return best
}
