package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"strings"
	"testing"
	"time"

	"temco/internal/obs"
)

// inferStub is a scriptable fake temcod /infer endpoint.
type inferStub struct {
	srv     *httptest.Server
	handler func(w http.ResponseWriter, r *http.Request)
}

func newInferStub(h func(w http.ResponseWriter, r *http.Request)) *inferStub {
	s := &inferStub{handler: h}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.handler(w, r)
	}))
	return s
}

// routerUnderTest wires stubs into a table (states set directly; the
// prober never runs) and returns the router plus its HTTP front.
func routerUnderTest(t *testing.T, cfg RouterConfig, depths []int, stubs ...*inferStub) (*Router, *httptest.Server, *Table) {
	t.Helper()
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		urls[i] = s.srv.URL
	}
	tab, err := NewTable(urls, Config{ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tab.Replicas() {
		d := 0
		if i < len(depths) {
			d = depths[i]
		}
		setReplica(tab, r, StateHealthy, Health{Ready: true, QueueDepth: d, BreakerState: "closed"})
	}
	rt := NewRouter(tab, cfg)
	front := httptest.NewServer(http.HandlerFunc(rt.ServeInfer))
	t.Cleanup(func() { front.Close(); tab.Close() })
	return rt, front, tab
}

func postJSON(t *testing.T, url string, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRouterProxiesSuccess(t *testing.T) {
	stub := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		body, _ := httputil.DumpRequest(r, true)
		if !bytes.Contains(body, []byte(`"batch":2`)) {
			t.Errorf("body not forwarded: %s", body)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"argmax":[7,7]}`)
	})
	defer stub.srv.Close()
	_, front, tab := routerUnderTest(t, RouterConfig{}, nil, stub)

	resp := postJSON(t, front.URL, `{"batch":2}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ReplicaHeader); got != stub.srv.URL {
		t.Fatalf("%s = %q, want %q", ReplicaHeader, got, stub.srv.URL)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["argmax"] == nil {
		t.Fatalf("response not relayed: %v", out)
	}
	if tab.met.placements.Value() != 1 || tab.Replicas()[0].placements.Load() != 1 {
		t.Fatalf("placement counters: %d/%d", tab.met.placements.Value(), tab.Replicas()[0].placements.Load())
	}
	if resp2 := postJSON(t, front.URL, `{"batch":2}`, nil); resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d", resp2.StatusCode)
	} else {
		resp2.Body.Close()
	}
}

func TestRouterRejectsNonPost(t *testing.T) {
	stub := newInferStub(func(w http.ResponseWriter, r *http.Request) {})
	defer stub.srv.Close()
	_, front, _ := routerUnderTest(t, RouterConfig{}, nil, stub)
	resp, err := http.Get(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
}

// TestRouterRetriesConnError: the least-loaded replica's process is gone
// (connection refused); the router must move the attempt to the next
// replica and succeed.
func TestRouterRetriesConnError(t *testing.T) {
	good := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	defer good.srv.Close()
	// A listener that is closed immediately: connection refused, stable port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	tab, err := NewTable([]string{deadURL, good.srv.URL}, Config{ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// The dead replica looks best on paper (lower depth): the router must
	// pick it first and recover via retry.
	setReplica(tab, tab.Replicas()[0], StateHealthy, Health{Ready: true, QueueDepth: 0})
	setReplica(tab, tab.Replicas()[1], StateHealthy, Health{Ready: true, QueueDepth: 5})
	rt := NewRouter(tab, RouterConfig{})
	front := httptest.NewServer(http.HandlerFunc(rt.ServeInfer))
	defer front.Close()
	defer tab.Close()

	resp := postJSON(t, front.URL, `{"batch":1}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ReplicaHeader); got != good.srv.URL {
		t.Fatalf("served by %q, want the good replica", got)
	}
	if rt.Stats().Retries == 0 {
		t.Fatal("retry counter untouched")
	}
}

// TestRouterRetriesShedResponses: complete 429/503 responses are retried on
// another replica; when every replica sheds, the last shed response is
// relayed with its Retry-After intact.
func TestRouterRetriesShedResponses(t *testing.T) {
	shedding := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded","status":429}`)
	})
	defer shedding.srv.Close()
	good := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	defer good.srv.Close()

	_, front, _ := routerUnderTest(t, RouterConfig{}, []int{0, 5}, shedding, good)
	resp := postJSON(t, front.URL, `{"batch":1}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(ReplicaHeader) != good.srv.URL {
		t.Fatalf("shed response must be retried on the other replica: %d via %q",
			resp.StatusCode, resp.Header.Get(ReplicaHeader))
	}

	// Fleet-wide shed: the backpressure response itself is the answer.
	_, front2, _ := routerUnderTest(t, RouterConfig{}, nil, shedding)
	resp2 := postJSON(t, front2.URL, `{"batch":1}`, nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fleet-wide shed: status %d", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") != "1" {
		t.Fatal("Retry-After must be relayed")
	}
	var out map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil || out["error"] == nil {
		t.Fatalf("shed body must be relayed JSON: %v %v", out, err)
	}
}

// TestRouterNeverRetriesPartial: a replica that starts a response and dies
// mid-body already executed the request; the router must abort with a
// typed 502 and must not place the request anywhere else.
func TestRouterNeverRetriesPartial(t *testing.T) {
	partial := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("no hijacker")
			return
		}
		conn, buf, err := hj.Hijack()
		if err != nil {
			return
		}
		buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n{\"trunc")
		buf.Flush()
		conn.Close()
	})
	defer partial.srv.Close()
	good := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	defer good.srv.Close()

	rt, front, tab := routerUnderTest(t, RouterConfig{}, []int{0, 5}, partial, good)
	resp := postJSON(t, front.URL, `{"batch":1}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial response: status %d, want 502", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["retryable"] != true {
		t.Fatalf("partial abort must be marked retryable-by-the-caller: %v", out)
	}
	if st := rt.Stats(); st.PartialAborts != 1 {
		t.Fatalf("partial aborts: %+v", st)
	}
	if n := tab.Replicas()[1].placements.Load(); n != 0 {
		t.Fatalf("request must not be retried after a partial response (good replica saw %d)", n)
	}
}

// TestRouterNoReplica: a fleet with nothing routable fails fast with a
// typed, retryable 503 and Retry-After.
func TestRouterNoReplica(t *testing.T) {
	stub := newInferStub(func(w http.ResponseWriter, r *http.Request) {})
	defer stub.srv.Close()
	rt, front, tab := routerUnderTest(t, RouterConfig{}, nil, stub)
	setReplica(tab, tab.Replicas()[0], StateDead, Health{})

	resp := postJSON(t, front.URL, `{"batch":1}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no-replica failure must carry Retry-After")
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out["retryable"] != true {
		t.Fatalf("want retryable JSON error, got %v (%v)", out, err)
	}
	if rt.Stats().NoReplica != 1 {
		t.Fatalf("stats: %+v", rt.Stats())
	}
}

// TestRouterHedging: a slow primary is hedged onto another replica after
// the latency-percentile delay, and the fast backup wins.
func TestRouterHedging(t *testing.T) {
	slow := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(500 * time.Millisecond):
		}
		fmt.Fprint(w, `{"who":"slow"}`)
	})
	defer slow.srv.Close()
	fast := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"who":"fast"}`)
	})
	defer fast.srv.Close()

	rt, front, _ := routerUnderTest(t, RouterConfig{Hedge: true, MinHedgeDelay: 5 * time.Millisecond},
		[]int{0, 5}, slow, fast)
	// Warm the digest: 5ms typical latency, so the hedge arms at ~5ms.
	for i := 0; i < digestWarmup; i++ {
		rt.lat.observe(5 * time.Millisecond)
	}

	start := time.Now()
	resp := postJSON(t, front.URL, `{"batch":1}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ReplicaHeader); got != fast.srv.URL {
		t.Fatalf("hedge must win: served by %q", got)
	}
	if el := time.Since(start); el >= 500*time.Millisecond {
		t.Fatalf("hedged request waited for the slow primary: %v", el)
	}
	st := rt.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedge counters: %+v", st)
	}
}

// TestRouterHedgeStaysColdWithoutSamples: no hedge fires before the digest
// warms up, so cold starts cannot double traffic on noise.
func TestRouterHedgeStaysColdWithoutSamples(t *testing.T) {
	rt := NewRouter(&Table{cfg: Config{}}, RouterConfig{Hedge: true})
	if _, ok := rt.hedgeDelay(); ok {
		t.Fatal("hedge delay must stay disarmed before warmup")
	}
	for i := 0; i < digestWarmup; i++ {
		rt.lat.observe(20 * time.Millisecond)
	}
	d, ok := rt.hedgeDelay()
	if !ok || d < rt.cfg.MinHedgeDelay {
		t.Fatalf("warmed hedge delay: %v ok=%v", d, ok)
	}
}

// TestRouterShardKeyAffinity: equal load → the shard key pins placement.
func TestRouterShardKeyAffinity(t *testing.T) {
	mk := func(name string) *inferStub {
		return newInferStub(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"who":%q}`, name)
		})
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	defer a.srv.Close()
	defer b.srv.Close()
	defer c.srv.Close()
	_, front, _ := routerUnderTest(t, RouterConfig{}, nil, a, b, c)

	var firstWho string
	for i := 0; i < 8; i++ {
		resp := postJSON(t, front.URL, `{"batch":1}`, map[string]string{ShardKeyHeader: "tenant-42"})
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		who, _ := out["who"].(string)
		if firstWho == "" {
			firstWho = who
		} else if who != firstWho {
			t.Fatalf("keyed requests moved: %q then %q", firstWho, who)
		}
	}
}

// TestClusterMetricsExposition: the cluster registry renders lint-clean
// Prometheus text with per-replica labeled families.
func TestClusterMetricsExposition(t *testing.T) {
	stub := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	defer stub.srv.Close()
	_, front, tab := routerUnderTest(t, RouterConfig{}, nil, stub)
	resp := postJSON(t, front.URL, `{"batch":1}`, nil)
	resp.Body.Close()

	var buf bytes.Buffer
	if err := tab.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"temco_cluster_replica_state{replica=",
		"temco_cluster_replica_placements_total{replica=",
		"temco_cluster_placements_total 1",
		"temco_cluster_routable_replicas 1",
		"temco_cluster_proxy_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := obs.CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("cluster exposition fails lint: %v\n%s", err, out)
	}
}

// TestRouterRoutesAroundBatchPending: two replicas report the same queue
// depth on /readyz, but one holds requests in its batch-accumulation
// window; the router must place traffic on the emptier one.
func TestRouterRoutesAroundBatchPending(t *testing.T) {
	served := make([]int, 2)
	busy := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		served[0]++
		fmt.Fprint(w, `{"ok":true}`)
	})
	idle := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		served[1]++
		fmt.Fprint(w, `{"ok":true}`)
	})
	defer busy.srv.Close()
	defer idle.srv.Close()
	_, front, tab := routerUnderTest(t, RouterConfig{}, nil, busy, idle)
	rs := tab.Replicas()
	setReplica(tab, rs[0], StateHealthy,
		Health{Ready: true, QueueDepth: 2, BatchPending: 5, BreakerState: "closed"})
	setReplica(tab, rs[1], StateHealthy,
		Health{Ready: true, QueueDepth: 2, BreakerState: "closed"})

	for i := 0; i < 3; i++ {
		resp := postJSON(t, front.URL, `{"batch":1}`, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if served[0] != 0 || served[1] != 3 {
		t.Fatalf("placement split busy/idle = %d/%d, want 0/3", served[0], served[1])
	}
}
