package cluster

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"temco/internal/obs"
)

// tracedFront wraps the router in the same TraceHTTP middleware temcor
// mounts, so these tests exercise the real ingress path: mint/inherit the
// trace, thread it through placement, seal the timeline into the flight
// recorder.
func tracedFront(t *testing.T, rt *Router) *httptest.Server {
	t.Helper()
	front := httptest.NewServer(obs.TraceHTTP(http.HandlerFunc(rt.ServeInfer), "/infer"))
	t.Cleanup(front.Close)
	return front
}

// stageEvents collects a timeline's (stage, detail) pairs for assertions.
func stageEvents(tl obs.ReqTimeline) map[string][]string {
	out := map[string][]string{}
	for _, sp := range tl.Spans {
		out[sp.Stage] = append(out[sp.Stage], sp.Detail)
	}
	return out
}

// traceSink records every traceparent an inferStub receives.
type traceSink struct {
	mu      sync.Mutex
	parents []obs.TraceContext
}

func (s *traceSink) observe(t *testing.T, r *http.Request) {
	t.Helper()
	tc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	if !ok {
		t.Errorf("replica received no valid traceparent: %q", r.Header.Get(obs.TraceparentHeader))
		return
	}
	s.mu.Lock()
	s.parents = append(s.parents, tc)
	s.mu.Unlock()
}

func (s *traceSink) all() []obs.TraceContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.TraceContext(nil), s.parents...)
}

// TestRouterTraceRetryCoherent: a retry onto another replica stays ONE
// trace — pick, failed attempt, retry, and winner all on the same
// timeline, and the outbound hop carries a child of that trace.
func TestRouterTraceRetryCoherent(t *testing.T) {
	fr := obs.EnableFlightRecorder(obs.FlightConfig{SampleRate: 1})
	defer obs.DisableFlightRecorder()

	var sink traceSink
	good := newInferStub(nil)
	good.handler = func(w http.ResponseWriter, r *http.Request) {
		sink.observe(t, r)
		fmt.Fprint(w, `{"ok":true}`)
	}
	defer good.srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	tab, err := NewTable([]string{deadURL, good.srv.URL}, Config{ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	setReplica(tab, tab.Replicas()[0], StateHealthy, Health{Ready: true, QueueDepth: 0})
	setReplica(tab, tab.Replicas()[1], StateHealthy, Health{Ready: true, QueueDepth: 5})
	rt := NewRouter(tab, RouterConfig{})
	front := tracedFront(t, rt)

	resp := postJSON(t, front.URL+"/infer", `{"batch":1}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Temco-Trace-Id")

	tl, found := fr.Get(traceID)
	if !found {
		t.Fatalf("no timeline retained for trace %s", traceID)
	}
	ev := stageEvents(tl)
	if len(ev["route.pick"]) == 0 || ev["route.pick"][0] != deadURL {
		t.Fatalf("route.pick missing or wrong: %v", ev["route.pick"])
	}
	if len(ev["route.retry"]) == 0 {
		t.Fatalf("retry not on the timeline: %v", ev)
	}
	if len(ev["route.attempt"]) < 2 {
		t.Fatalf("want both attempts on one timeline, got %v", ev["route.attempt"])
	}
	if len(ev["route.winner"]) != 1 || ev["route.winner"][0] != good.srv.URL {
		t.Fatalf("winner replica not labeled: %v", ev["route.winner"])
	}
	// The replica-side hop is a child of the same trace.
	parents := sink.all()
	if len(parents) != 1 || parents[0].TraceID != traceID {
		t.Fatalf("outbound traceparent wrong: %+v (trace %s)", parents, traceID)
	}
}

// TestRouterTraceHedgeWinnerAndLoser: a hedged request produces one
// coherent trace — the hedge fire, the winning replica, and the canceled
// loser are all labeled — and both outbound attempts share the trace id
// with distinct span ids.
func TestRouterTraceHedgeWinnerAndLoser(t *testing.T) {
	fr := obs.EnableFlightRecorder(obs.FlightConfig{SampleRate: 1})
	defer obs.DisableFlightRecorder()

	var sink traceSink
	slow := newInferStub(nil)
	slow.handler = func(w http.ResponseWriter, r *http.Request) {
		sink.observe(t, r)
		select {
		case <-r.Context().Done():
			return
		case <-time.After(500 * time.Millisecond):
		}
		fmt.Fprint(w, `{"who":"slow"}`)
	}
	defer slow.srv.Close()
	fast := newInferStub(nil)
	fast.handler = func(w http.ResponseWriter, r *http.Request) {
		sink.observe(t, r)
		fmt.Fprint(w, `{"who":"fast"}`)
	}
	defer fast.srv.Close()

	rt, _, _ := routerUnderTest(t, RouterConfig{Hedge: true, MinHedgeDelay: 5 * time.Millisecond},
		[]int{0, 5}, slow, fast)
	for i := 0; i < digestWarmup; i++ {
		rt.lat.observe(5 * time.Millisecond)
	}
	front := tracedFront(t, rt)

	resp := postJSON(t, front.URL+"/infer", `{"batch":1}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Temco-Trace-Id")

	tl, found := fr.Get(traceID)
	if !found {
		t.Fatalf("no timeline retained for trace %s", traceID)
	}
	ev := stageEvents(tl)
	if len(ev["route.hedge"]) != 1 || ev["route.hedge"][0] != fast.srv.URL {
		t.Fatalf("hedge fire not labeled: %v", ev["route.hedge"])
	}
	if len(ev["route.winner"]) != 1 || ev["route.winner"][0] != fast.srv.URL {
		t.Fatalf("winner not labeled: %v", ev["route.winner"])
	}
	if len(ev["route.cancelled"]) != 1 || ev["route.cancelled"][0] != slow.srv.URL {
		t.Fatalf("canceled loser not labeled: %v", ev["route.cancelled"])
	}
	parents := sink.all()
	if len(parents) != 2 {
		t.Fatalf("want 2 outbound attempts, saw %d", len(parents))
	}
	if parents[0].TraceID != traceID || parents[1].TraceID != traceID {
		t.Fatalf("attempts split the trace: %+v", parents)
	}
	if parents[0].SpanID == parents[1].SpanID {
		t.Fatal("hedged attempts must be distinct spans")
	}
}

// TestRouterTraceShedRelay: a fleet-wide shed is classed "shed" on the
// timeline with the relaying replica labeled, and the flight recorder
// keeps it.
func TestRouterTraceShedRelay(t *testing.T) {
	fr := obs.EnableFlightRecorder(obs.FlightConfig{SampleRate: 1})
	defer obs.DisableFlightRecorder()

	shedding := newInferStub(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded","status":429}`)
	})
	defer shedding.srv.Close()
	rt, _, _ := routerUnderTest(t, RouterConfig{}, nil, shedding)
	front := tracedFront(t, rt)

	resp := postJSON(t, front.URL+"/infer", `{"batch":1}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Temco-Trace-Id")

	tl, found := fr.Get(traceID)
	if !found {
		t.Fatal("shed timeline not retained")
	}
	if tl.Status != "shed" {
		t.Fatalf("status %q, want shed", tl.Status)
	}
	if ev := stageEvents(tl); len(ev["route.shed_relay"]) != 1 || ev["route.shed_relay"][0] != shedding.srv.URL {
		t.Fatalf("shed relay not labeled: %v", ev)
	}
	st := fr.Stats()
	if st.ShedKept != st.ShedSeen || st.ShedSeen == 0 {
		t.Fatalf("shed retention broken: %+v", st)
	}
}
