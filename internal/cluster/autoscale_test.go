package cluster

import (
	"testing"
	"time"
)

// scaleHarness scripts a two-replica fleet through the autoscaler with a
// deterministic clock: each step writes per-replica cumulative health and
// evaluates one tick later.
type scaleHarness struct {
	tab *Table
	a   *Autoscaler
	now time.Time
}

func newScaleHarness(t *testing.T, cfg AutoscaleConfig) *scaleHarness {
	t.Helper()
	tab, err := NewTable([]string{"http://r1:1", "http://r2:1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &scaleHarness{tab: tab, a: NewAutoscaler(tab, cfg), now: time.Unix(3000, 0)}
}

// step writes the same health to every replica and evaluates one second
// later, returning the published desired count.
func (h *scaleHarness) step(health Health) int {
	for _, r := range h.tab.Replicas() {
		setReplica(h.tab, r, StateHealthy, health)
	}
	h.now = h.now.Add(time.Second)
	return h.a.Evaluate(h.now)
}

func TestAutoscalerScalesUpUnderOverload(t *testing.T) {
	h := newScaleHarness(t, AutoscaleConfig{TargetUtilization: 0.7, Min: 1, Max: 10, UpStreak: 2, DownStreak: 3})
	if got := h.a.Desired(); got != 2 {
		t.Fatalf("initial desired: want the table size 2, got %d", got)
	}

	// Baseline evaluation: establishes the cumulative samples.
	idle := Health{Ready: true, Workers: 2}
	if got := h.step(idle); got != 2 {
		t.Fatalf("baseline eval moved the signal: %d", got)
	}

	// Saturation: both workers fully busy on each replica (run-seconds grows
	// by workers × elapsed) plus a deep queue. The raw proposal jumps, but
	// hysteresis holds the signal until UpStreak consecutive evaluations.
	busy := func(i int) Health {
		return Health{Ready: true, Workers: 2, RunSecondsTotal: float64(2 * i), QueueDepth: 5, BatchPending: 1}
	}
	if got := h.step(busy(1)); got != 2 {
		t.Fatalf("one overloaded eval must not move the signal yet (UpStreak 2): %d", got)
	}
	got := h.step(busy(2))
	if got <= 2 {
		t.Fatalf("two consecutive overloaded evals must scale up: %d", got)
	}
	st := h.a.Stats()
	if st.ScaleUps != 1 || st.LastRaw != got {
		t.Fatalf("stats after scale-up: %+v", st)
	}
	// busy = 4 workers, queued = 12 → need 16 worker-equivalents at target
	// 0.7 × 2 workers/replica = ceil(16/1.4) = 12, clamped to Max 10.
	if got != 10 {
		t.Fatalf("raw sizing: want clamp at 10, got %d", got)
	}
}

func TestAutoscalerStableAtSteadyLoad(t *testing.T) {
	h := newScaleHarness(t, AutoscaleConfig{TargetUtilization: 0.7, Min: 1, Max: 10, UpStreak: 2, DownStreak: 3})
	h.step(Health{Ready: true, Workers: 2}) // baseline

	// Moderate steady load: 0.8 busy workers per replica, empty queue —
	// 1.6 worker-equivalents against a 2.8 capacity at target, so the
	// proposal matches the current fleet and the signal must not move over
	// many evaluations.
	for i := 1; i <= 20; i++ {
		health := Health{Ready: true, Workers: 2, RunSecondsTotal: 0.8 * float64(i)}
		if got := h.step(health); got != 2 {
			t.Fatalf("eval %d: steady load flapped the signal to %d", i, got)
		}
	}
	st := h.a.Stats()
	if st.ScaleUps != 0 || st.ScaleDowns != 0 {
		t.Fatalf("steady load must publish no moves: %+v", st)
	}
}

func TestAutoscalerScalesDownSlowly(t *testing.T) {
	h := newScaleHarness(t, AutoscaleConfig{TargetUtilization: 0.7, Min: 1, Max: 10, UpStreak: 1, DownStreak: 3})
	h.step(Health{Ready: true, Workers: 2}) // baseline

	// Spike up first (UpStreak 1 publishes immediately).
	h.step(Health{Ready: true, Workers: 2, RunSecondsTotal: 2, QueueDepth: 8})
	high := h.a.Desired()
	if high <= 2 {
		t.Fatalf("precondition: scale-up failed, desired %d", high)
	}

	// Idle: the proposal collapses to Min, but the signal steps down one
	// replica per DownStreak window — never a cliff.
	idleAt := func(i int) Health {
		return Health{Ready: true, Workers: 2, RunSecondsTotal: 2} // cumulative stops growing
	}
	for i := 1; i < 3; i++ {
		if got := h.step(idleAt(i)); got != high {
			t.Fatalf("eval %d: scale-down before DownStreak (desired %d, was %d)", i, got, high)
		}
	}
	if got := h.step(idleAt(3)); got != high-1 {
		t.Fatalf("after DownStreak: want a single step down to %d, got %d", high-1, got)
	}
	if st := h.a.Stats(); st.ScaleDowns != 1 {
		t.Fatalf("stats after scale-down: %+v", st)
	}
}

func TestAutoscalerOverloadOverrides(t *testing.T) {
	// Breaker transitions between evaluations mean the fleet is faulting
	// under pressure: the proposal lifts above the current size even at low
	// measured utilization.
	h := newScaleHarness(t, AutoscaleConfig{TargetUtilization: 0.7, Min: 1, Max: 10, UpStreak: 1, DownStreak: 100})
	h.step(Health{Ready: true, Workers: 2})
	if got := h.step(Health{Ready: true, Workers: 2, BreakerTransitions: 3}); got != 3 {
		t.Fatalf("breaker transitions must lift desired above the fleet size: %d", got)
	}

	// A p95 queue wait past the target is the same kind of evidence.
	h2 := newScaleHarness(t, AutoscaleConfig{TargetUtilization: 0.7, Min: 1, Max: 10, UpStreak: 1, DownStreak: 100, QueueWaitTarget: 100 * time.Millisecond})
	h2.step(Health{Ready: true, Workers: 2})
	if got := h2.step(Health{Ready: true, Workers: 2, QueueWaitP95MS: 400}); got != 3 {
		t.Fatalf("queue-wait p95 past target must lift desired: %d", got)
	}
}

func TestAutoscalerIgnoresUnroutableReplicas(t *testing.T) {
	h := newScaleHarness(t, AutoscaleConfig{TargetUtilization: 0.7, Min: 1, Max: 10, UpStreak: 1})
	h.step(Health{Ready: true, Workers: 2})

	// One replica drains away: its queue must not count toward demand.
	reps := h.tab.Replicas()
	setReplica(h.tab, reps[0], StateHealthy, Health{Ready: true, Workers: 2, RunSecondsTotal: 1})
	setReplica(h.tab, reps[1], StateDraining, Health{Ready: false, Workers: 2, QueueDepth: 50})
	h.now = h.now.Add(time.Second)
	if got := h.a.Evaluate(h.now); got != 2 {
		t.Fatalf("draining replica's queue leaked into the signal: %d", got)
	}
	if st := h.a.Stats(); st.QueuedRequests != 0 {
		t.Fatalf("queued must exclude unroutable replicas: %+v", st)
	}
}
