package decompose

import (
	"fmt"
	"math"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// Method selects the tensor decomposition applied to convolution weights.
type Method int

const (
	// Tucker is Tucker-2 decomposition (the paper's evaluation baseline).
	Tucker Method = iota
	// CPD is canonical polyadic decomposition with a depthwise core.
	CPD
	// TensorTrain is TT-SVD with two separable spatial cores.
	TensorTrain
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Tucker:
		return "tucker"
	case CPD:
		return "cp"
	case TensorTrain:
		return "tt"
	default:
		return "unknown"
	}
}

// Options configures the decomposition rewrite.
type Options struct {
	Method Method
	// Ratio is the decomposition ratio: reduced channel counts are
	// max(1, round(Ratio·C)). The paper evaluates Ratio = 0.1.
	Ratio float64
	// MinChannels skips convolutions whose input or output channel count
	// is below this bound (decomposing them saves nothing).
	MinChannels int
	// HOOIIters is the number of Tucker HOOI refinement sweeps.
	HOOIIters int
	// CPIters is the number of CP-ALS sweeps.
	CPIters int
	// Seed seeds CP-ALS initialization.
	Seed uint64
}

// DefaultOptions mirrors the paper's setup: Tucker with ratio 0.1 applied
// to every spatial convolution (including the 3-channel stem, whose input
// rank clamps to 1 — the paper's models do the same, which is what lets
// fusion remove the first full-size activation).
func DefaultOptions() Options {
	return Options{Method: Tucker, Ratio: 0.1, MinChannels: 2, HOOIIters: 2, CPIters: 8, Seed: 1}
}

// LayerReport records what happened to one convolution.
type LayerReport struct {
	Name            string
	Method          Method
	Ranks           []int
	RelErr          float64
	OrigWeightBytes int64
	NewWeightBytes  int64
	OrigFLOPs       int64
	NewFLOPs        int64
}

// Report summarizes a whole-graph decomposition rewrite.
type Report struct {
	Layers []LayerReport
}

// TotalWeightBytes returns (original, decomposed) weight bytes over the
// rewritten layers.
func (r Report) TotalWeightBytes() (orig, next int64) {
	for _, l := range r.Layers {
		orig += l.OrigWeightBytes
		next += l.NewWeightBytes
	}
	return orig, next
}

func rankOf(ratio float64, c int) int {
	r := int(math.Round(ratio * float64(c)))
	if r < 1 {
		r = 1
	}
	if r > c {
		r = c
	}
	return r
}

// Eligible reports whether node n is a convolution the rewrite decomposes.
func Eligible(n *ir.Node, opts Options) bool {
	if n.Kind != ir.KindConv2D || n.Role != ir.RoleNone {
		return false
	}
	a := n.Conv()
	g := a.Groups
	if g == 0 {
		g = 1
	}
	return g == 1 && a.KH*a.KW > 1 && a.InC >= opts.MinChannels && a.OutC >= opts.MinChannels
}

// Decompose clones g and replaces every eligible convolution with a
// decomposed convolution sequence fconv → core(s) → lconv (paper Fig. 2b).
// The original bias moves to the lconv so the sequence output matches a
// convolution with the reconstructed weight exactly.
func Decompose(g *ir.Graph, opts Options) (*ir.Graph, Report) {
	ng := g.Clone()
	var rep Report
	snapshot := append([]*ir.Node(nil), ng.Nodes...)
	rebuilt := make([]*ir.Node, 0, len(snapshot)+16)
	for _, n := range snapshot {
		if !Eligible(n, opts) {
			rebuilt = append(rebuilt, n)
			continue
		}
		seq, lr := decomposeConv(ng, n, opts)
		rebuilt = append(rebuilt, seq...)
		// Rewire all consumers (and outputs) of the original conv to the
		// lconv that ends the sequence. The snapshot still holds every
		// consumer, so edges update in place.
		last := seq[len(seq)-1]
		for _, c := range snapshot {
			ir.ReplaceUsesIn(c, n, last)
		}
		for i, o := range ng.Outputs {
			if o == n {
				ng.Outputs[i] = last
			}
		}
		rep.Layers = append(rep.Layers, lr)
	}
	ng.Nodes = rebuilt
	if err := ng.Validate(); err != nil {
		panic(fmt.Sprintf("decompose: rewrite produced invalid graph: %v", err))
	}
	return ng, rep
}

func newConvNode(g *ir.Graph, name string, in *ir.Node, a *ir.ConvAttrs, w, b *tensor.Tensor, role ir.Role) *ir.Node {
	shape, err := ir.InferShape(ir.KindConv2D, a, [][]int{in.Shape})
	if err != nil {
		panic(fmt.Sprintf("decompose: %s: %v", name, err))
	}
	return &ir.Node{
		ID: g.NewID(), Name: name, Kind: ir.KindConv2D,
		Inputs: []*ir.Node{in}, Attrs: a, W: w, B: b, Shape: shape, Role: role,
	}
}

func decomposeConv(g *ir.Graph, n *ir.Node, opts Options) ([]*ir.Node, LayerReport) {
	a := n.Conv()
	in := n.Inputs[0]
	lr := LayerReport{
		Name:            n.Name,
		Method:          opts.Method,
		OrigWeightBytes: n.WeightBytes(),
		OrigFLOPs:       ir.FLOPs(n),
	}
	var seq []*ir.Node
	switch opts.Method {
	case Tucker:
		f := Tucker2(n.W, rankOf(opts.Ratio, a.InC), rankOf(opts.Ratio, a.OutC), opts.HOOIIters)
		// Tucker2 may clamp the requested ranks to the multilinear-rank
		// bound; the sequence must be built from the actual ranks.
		r1, r2 := f.R1, f.R2
		lr.Ranks = []int{r1, r2}
		lr.RelErr = tensor.RelErr(f.Reconstruct(a.OutC, a.InC, a.KH, a.KW), n.W)
		fconv := newConvNode(g, n.Name+".fconv", in,
			&ir.ConvAttrs{InC: a.InC, OutC: r1, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1},
			f.FConvWeight(), nil, ir.RoleFConv)
		core := newConvNode(g, n.Name+".core", fconv,
			&ir.ConvAttrs{InC: r1, OutC: r2, KH: a.KH, KW: a.KW, SH: a.SH, SW: a.SW, PH: a.PH, PW: a.PW, Groups: 1},
			f.Core, nil, ir.RoleCore)
		lconv := newConvNode(g, n.Name+".lconv", core,
			&ir.ConvAttrs{InC: r2, OutC: a.OutC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1},
			f.LConvWeight(), n.B, ir.RoleLConv)
		seq = []*ir.Node{fconv, core, lconv}
	case CPD:
		r := rankOf(opts.Ratio, (a.InC+a.OutC)/2)
		f := CP(n.W, r, opts.CPIters, opts.Seed)
		lr.Ranks = []int{r}
		lr.RelErr = tensor.RelErr(f.Reconstruct(), n.W)
		fconv := newConvNode(g, n.Name+".fconv", in,
			&ir.ConvAttrs{InC: a.InC, OutC: r, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1},
			f.FConvWeight(), nil, ir.RoleFConv)
		core := newConvNode(g, n.Name+".core", fconv,
			&ir.ConvAttrs{InC: r, OutC: r, KH: a.KH, KW: a.KW, SH: a.SH, SW: a.SW, PH: a.PH, PW: a.PW, Groups: r},
			f.CoreWeight(), nil, ir.RoleCore)
		lconv := newConvNode(g, n.Name+".lconv", core,
			&ir.ConvAttrs{InC: r, OutC: a.OutC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1},
			f.LConvWeight(), n.B, ir.RoleLConv)
		seq = []*ir.Node{fconv, core, lconv}
	case TensorTrain:
		r1 := rankOf(opts.Ratio, a.InC)
		r3 := rankOf(opts.Ratio, a.OutC)
		r2 := rankOf(opts.Ratio, (a.InC+a.OutC)/2)
		f := TT(n.W, r1, r2, r3)
		lr.Ranks = []int{f.R1, f.R2, f.R3}
		lr.RelErr = tensor.RelErr(f.Reconstruct(a.OutC, a.InC), n.W)
		fconv := newConvNode(g, n.Name+".fconv", in,
			&ir.ConvAttrs{InC: a.InC, OutC: f.R1, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1},
			f.FConvWeight(), nil, ir.RoleFConv)
		core1 := newConvNode(g, n.Name+".core1", fconv,
			&ir.ConvAttrs{InC: f.R1, OutC: f.R2, KH: a.KH, KW: 1, SH: a.SH, SW: 1, PH: a.PH, PW: 0, Groups: 1},
			f.G2, nil, ir.RoleCore)
		core2 := newConvNode(g, n.Name+".core2", core1,
			&ir.ConvAttrs{InC: f.R2, OutC: f.R3, KH: 1, KW: a.KW, SH: 1, SW: a.SW, PH: 0, PW: a.PW, Groups: 1},
			f.G3, nil, ir.RoleCore)
		lconv := newConvNode(g, n.Name+".lconv", core2,
			&ir.ConvAttrs{InC: f.R3, OutC: a.OutC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1},
			f.LConvWeight(), n.B, ir.RoleLConv)
		seq = []*ir.Node{fconv, core1, core2, lconv}
	default:
		panic(fmt.Sprintf("decompose: unknown method %v", opts.Method))
	}
	for _, s := range seq {
		lr.NewWeightBytes += s.WeightBytes()
		lr.NewFLOPs += ir.FLOPs(s)
	}
	return seq, lr
}
