package decompose

import (
	"strings"
	"testing"
	"testing/quick"

	"temco/internal/ir"
	"temco/internal/ops"
	"temco/internal/tensor"
)

func randW(seed uint64, o, i, kh, kw int) *tensor.Tensor {
	w := tensor.New(o, i, kh, kw)
	w.FillNormal(tensor.NewRNG(seed), 0, 0.5)
	return w
}

func TestTuckerFullRankExact(t *testing.T) {
	w := randW(1, 6, 5, 3, 3)
	f := Tucker2(w, 5, 6, 0)
	rec := f.Reconstruct(6, 5, 3, 3)
	if d := tensor.RelErr(rec, w); d > 1e-5 {
		t.Fatalf("full-rank Tucker must be exact, rel err %v", d)
	}
}

func TestTuckerErrorDecreasesWithRank(t *testing.T) {
	w := randW(2, 12, 12, 3, 3)
	prev := 2.0
	for _, r := range []int{1, 3, 6, 12} {
		f := Tucker2(w, r, r, 1)
		e := tensor.RelErr(f.Reconstruct(12, 12, 3, 3), w)
		if e > prev+1e-9 {
			t.Fatalf("rank %d error %v did not decrease (prev %v)", r, e, prev)
		}
		prev = e
	}
	if prev > 1e-4 {
		t.Fatalf("near-full-rank error still %v", prev)
	}
}

func TestHOOIImprovesOnHOSVD(t *testing.T) {
	w := randW(3, 24, 20, 3, 3)
	e0 := tensor.RelErr(Tucker2(w, 4, 4, 0).Reconstruct(24, 20, 3, 3), w)
	e2 := tensor.RelErr(Tucker2(w, 4, 4, 3).Reconstruct(24, 20, 3, 3), w)
	if e2 > e0+1e-6 {
		t.Fatalf("HOOI made the fit worse: %v → %v", e0, e2)
	}
}

// runSeq chains convolution nodes built from attrs/weights over in.
type seqLayer struct {
	a    *ir.ConvAttrs
	w, b *tensor.Tensor
}

func runSeq(in *tensor.Tensor, layers []seqLayer) *tensor.Tensor {
	cur := in
	for _, l := range layers {
		h, w := cur.Dim(2), cur.Dim(3)
		oh := (h+2*l.a.PH-l.a.KH)/l.a.SH + 1
		ow := (w+2*l.a.PW-l.a.KW)/l.a.SW + 1
		out := tensor.New(cur.Dim(0), l.a.OutC, oh, ow)
		ops.Conv2D(out, cur, l.w, l.b, l.a)
		cur = out
	}
	return cur
}

// TestTuckerSequenceMatchesReconstructedConv is the central algebraic
// invariant of the decomposition rewrite: the fconv→core→lconv sequence
// must equal a single convolution with the reconstructed weight.
func TestTuckerSequenceMatchesReconstructedConv(t *testing.T) {
	o, i, kh, kw := 10, 8, 3, 3
	w := randW(4, o, i, kh, kw)
	bias := tensor.New(o)
	bias.FillNormal(tensor.NewRNG(5), 0, 1)
	f := Tucker2(w, 3, 4, 2)

	in := tensor.New(2, i, 9, 9)
	in.FillNormal(tensor.NewRNG(6), 0, 1)

	// Single conv with reconstructed weight, stride 2, pad 1.
	recW := f.Reconstruct(o, i, kh, kw)
	aFull := &ir.ConvAttrs{InC: i, OutC: o, KH: kh, KW: kw, SH: 2, SW: 2, PH: 1, PW: 1, Groups: 1}
	want := runSeq(in, []seqLayer{{aFull, recW, bias}})

	got := runSeq(in, []seqLayer{
		{&ir.ConvAttrs{InC: i, OutC: 3, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, f.FConvWeight(), nil},
		{&ir.ConvAttrs{InC: 3, OutC: 4, KH: kh, KW: kw, SH: 2, SW: 2, PH: 1, PW: 1, Groups: 1}, f.Core, nil},
		{&ir.ConvAttrs{InC: 4, OutC: o, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, f.LConvWeight(), bias},
	})
	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("Tucker sequence deviates from reconstructed conv by %v", d)
	}
}

func TestCPSequenceMatchesReconstructedConv(t *testing.T) {
	o, i, kh, kw := 8, 6, 3, 3
	w := randW(7, o, i, kh, kw)
	f := CP(w, 4, 10, 9)
	in := tensor.New(1, i, 8, 8)
	in.FillNormal(tensor.NewRNG(8), 0, 1)

	recW := f.Reconstruct()
	aFull := &ir.ConvAttrs{InC: i, OutC: o, KH: kh, KW: kw, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
	want := runSeq(in, []seqLayer{{aFull, recW, nil}})

	got := runSeq(in, []seqLayer{
		{&ir.ConvAttrs{InC: i, OutC: 4, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, f.FConvWeight(), nil},
		{&ir.ConvAttrs{InC: 4, OutC: 4, KH: kh, KW: kw, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 4}, f.CoreWeight(), nil},
		{&ir.ConvAttrs{InC: 4, OutC: o, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, f.LConvWeight(), nil},
	})
	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("CP sequence deviates from reconstructed conv by %v", d)
	}
}

func TestCPALSReducesError(t *testing.T) {
	w := randW(11, 12, 10, 3, 3)
	e1 := tensor.RelErr(CP(w, 6, 1, 3).Reconstruct(), w)
	e10 := tensor.RelErr(CP(w, 6, 12, 3).Reconstruct(), w)
	if e10 > e1+1e-6 {
		t.Fatalf("more ALS sweeps increased error: %v → %v", e1, e10)
	}
	if e10 > 1.0 {
		t.Fatalf("CP fit did not converge at all: %v", e10)
	}
}

func TestTTSequenceMatchesReconstructedConv(t *testing.T) {
	o, i, kh, kw := 8, 6, 3, 3
	w := randW(13, o, i, kh, kw)
	f := TT(w, 3, 4, 3)
	in := tensor.New(2, i, 9, 9)
	in.FillNormal(tensor.NewRNG(14), 0, 1)

	recW := f.Reconstruct(o, i)
	aFull := &ir.ConvAttrs{InC: i, OutC: o, KH: kh, KW: kw, SH: 2, SW: 2, PH: 1, PW: 1, Groups: 1}
	want := runSeq(in, []seqLayer{{aFull, recW, nil}})

	got := runSeq(in, []seqLayer{
		{&ir.ConvAttrs{InC: i, OutC: f.R1, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, f.FConvWeight(), nil},
		{&ir.ConvAttrs{InC: f.R1, OutC: f.R2, KH: kh, KW: 1, SH: 2, SW: 1, PH: 1, PW: 0, Groups: 1}, f.G2, nil},
		{&ir.ConvAttrs{InC: f.R2, OutC: f.R3, KH: 1, KW: kw, SH: 1, SW: 2, PH: 0, PW: 1, Groups: 1}, f.G3, nil},
		{&ir.ConvAttrs{InC: f.R3, OutC: o, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, f.LConvWeight(), nil},
	})
	if d := tensor.MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("TT sequence deviates from reconstructed conv by %v", d)
	}
}

func TestTTFullRankExact(t *testing.T) {
	w := randW(15, 6, 5, 3, 3)
	f := TT(w, 99, 99, 99) // clamped to maximal ranks
	if d := tensor.RelErr(f.Reconstruct(6, 5), w); d > 1e-5 {
		t.Fatalf("full-rank TT must be exact, rel err %v", d)
	}
}

func buildTestGraph() *ir.Builder {
	b := ir.NewBuilder("dtest", 42)
	in := b.Input(16, 12, 12)
	c1 := b.Conv(in, 32, 3, 1, 1) // eligible
	r1 := b.ReLU(c1)
	c2 := b.Conv(r1, 32, 3, 1, 1)                       // eligible
	a := b.Add(c2, c1)                                  // skip connection
	d := b.ConvNamed("down", a, 8, 1, 1, 1, 1, 0, 0, 1) // 1×1: not eligible
	s := b.Conv(d, 8, 3, 1, 1)                          // below MinChannels: not eligible
	b.Output(s)
	return b
}

func TestDecomposeRewrite(t *testing.T) {
	b := buildTestGraph()
	opts := DefaultOptions()
	opts.Ratio = 0.25
	opts.MinChannels = 16
	dg, rep := Decompose(b.G, opts)
	if err := dg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(rep.Layers) != 2 {
		t.Fatalf("expected 2 decomposed layers, got %d", len(rep.Layers))
	}
	// Original graph untouched.
	if len(b.G.Nodes) != 7 {
		t.Fatalf("original graph mutated: %d nodes", len(b.G.Nodes))
	}
	// Each decomposed conv becomes 3 nodes: 7 - 2 + 6 = 11.
	if len(dg.Nodes) != 11 {
		t.Fatalf("decomposed graph has %d nodes, want 11", len(dg.Nodes))
	}
	roles := map[ir.Role]int{}
	for _, n := range dg.Nodes {
		roles[n.Role]++
	}
	if roles[ir.RoleFConv] != 2 || roles[ir.RoleCore] != 2 || roles[ir.RoleLConv] != 2 {
		t.Fatalf("role counts = %v", roles)
	}
	// Weight bytes must shrink (paper Eq. (1) vs Eq. (2)).
	for _, l := range rep.Layers {
		if l.NewWeightBytes >= l.OrigWeightBytes {
			t.Errorf("%s: weights grew %d → %d", l.Name, l.OrigWeightBytes, l.NewWeightBytes)
		}
		if l.NewFLOPs >= l.OrigFLOPs {
			t.Errorf("%s: FLOPs grew %d → %d", l.Name, l.OrigFLOPs, l.NewFLOPs)
		}
		if l.RelErr <= 0 || l.RelErr >= 1.2 {
			t.Errorf("%s: implausible rel err %v", l.Name, l.RelErr)
		}
	}
	// The add must now consume two lconv outputs.
	add := dg.NodeByName("add1")
	if add == nil {
		t.Fatal("add node lost")
	}
	for _, in := range add.Inputs {
		if !in.IsLConv() {
			t.Fatalf("add input %s is not an lconv", in)
		}
	}
	// Bias must have moved to the lconv.
	lconv := dg.NodeByName("conv1.lconv")
	if lconv == nil || lconv.B == nil {
		t.Fatal("lconv missing or lost the bias")
	}
	fconv := dg.NodeByName("conv1.fconv")
	if fconv == nil || fconv.B != nil {
		t.Fatal("fconv should carry no bias")
	}
	if !strings.Contains(lconv.Name, ".lconv") || !lconv.IsLConv() {
		t.Fatal("lconv is not structurally an lconv")
	}
}

func TestDecomposeAllMethodsValidate(t *testing.T) {
	for _, m := range []Method{Tucker, CPD, TensorTrain} {
		b := buildTestGraph()
		opts := DefaultOptions()
		opts.Method = m
		opts.Ratio = 0.25
		opts.MinChannels = 16
		dg, rep := Decompose(b.G, opts)
		if err := dg.Validate(); err != nil {
			t.Fatalf("%v: Validate: %v", m, err)
		}
		if len(rep.Layers) != 2 {
			t.Fatalf("%v: layers = %d", m, len(rep.Layers))
		}
		o, n := rep.TotalWeightBytes()
		if n >= o {
			t.Fatalf("%v: total weights grew %d → %d", m, o, n)
		}
	}
}

func TestMethodNames(t *testing.T) {
	if Tucker.String() != "tucker" || CPD.String() != "cp" || TensorTrain.String() != "tt" {
		t.Fatal("method names wrong")
	}
	if Method(99).String() != "unknown" {
		t.Fatal("unknown method should stringify safely")
	}
}

func TestRankOfClamps(t *testing.T) {
	if rankOf(0.1, 4) != 1 {
		t.Fatal("rank must clamp up to 1")
	}
	if rankOf(0.1, 64) != 6 {
		t.Fatalf("rankOf(0.1, 64) = %d, want 6", rankOf(0.1, 64))
	}
	if rankOf(2.0, 8) != 8 {
		t.Fatal("rank must clamp down to C")
	}
}

// Property: for random shapes, the Tucker sequence equals the reconstructed
// conv (stride 1, pad 1).
func TestQuickTuckerEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		o, i := 2+r.Intn(8), 2+r.Intn(8)
		r1, r2 := 1+r.Intn(i), 1+r.Intn(o)
		w := randW(seed, o, i, 3, 3)
		fac := Tucker2(w, r1, r2, 1)
		in := tensor.New(1, i, 6, 6)
		in.FillNormal(r, 0, 1)
		rec := fac.Reconstruct(o, i, 3, 3)
		aFull := &ir.ConvAttrs{InC: i, OutC: o, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
		want := runSeq(in, []seqLayer{{aFull, rec, nil}})
		got := runSeq(in, []seqLayer{
			{&ir.ConvAttrs{InC: i, OutC: r1, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, fac.FConvWeight(), nil},
			{&ir.ConvAttrs{InC: r1, OutC: r2, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}, fac.Core, nil},
			{&ir.ConvAttrs{InC: r2, OutC: o, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, fac.LConvWeight(), nil},
		})
		return tensor.MaxAbsDiff(got, want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
