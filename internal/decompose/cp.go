package decompose

import (
	"fmt"

	"temco/internal/linalg"
	"temco/internal/tensor"
)

// CPFactors holds a rank-R CP decomposition of a conv weight W[O,I,KH,KW]
// viewed as the 3-way tensor [O, I, KH·KW]:
//
//	W[o,i,s] ≈ Σ_r A[o,r]·B[i,r]·C[s,r]
//
// The scaling λ is folded into A. The decomposed convolution sequence is
// fconv (Bᵀ as 1×1), a depthwise KH×KW core conv (C, groups=R), and lconv
// (A as 1×1).
type CPFactors struct {
	A, B, C *linalg.Mat
	R       int
	KH, KW  int
}

// khatriRao returns the column-wise Khatri-Rao product of a [m,R] and
// b [n,R]: a matrix [m·n, R] whose column r is a_r ⊗ b_r.
func khatriRao(a, b *linalg.Mat) *linalg.Mat {
	r := a.Cols
	out := linalg.NewMat(a.Rows*b.Rows, r)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			row := (i*b.Rows + j) * r
			for c := 0; c < r; c++ {
				out.Data[row+c] = a.At(i, c) * b.At(j, c)
			}
		}
	}
	return out
}

// hadamard returns the elementwise product of equally-sized matrices.
func hadamard(a, b *linalg.Mat) *linalg.Mat {
	out := linalg.NewMat(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// unfold3 returns the mode-m unfolding of a 3-way tensor given as flat data
// with dims d, where the remaining modes vary with the later mode fastest
// (matching khatriRao(first, second) column ordering).
func unfold3(data []float32, d [3]int, mode int) *linalg.Mat {
	var o1, o2 int
	switch mode {
	case 0:
		o1, o2 = 1, 2
	case 1:
		o1, o2 = 0, 2
	default:
		o1, o2 = 0, 1
	}
	m := linalg.NewMat(d[mode], d[o1]*d[o2])
	strides := [3]int{d[1] * d[2], d[2], 1}
	for r := 0; r < d[mode]; r++ {
		c := 0
		for a := 0; a < d[o1]; a++ {
			for b := 0; b < d[o2]; b++ {
				off := r*strides[mode] + a*strides[o1] + b*strides[o2]
				m.Data[r*m.Cols+c] = float64(data[off])
				c++
			}
		}
	}
	return m
}

// CP computes a rank-r CP decomposition of w [O,I,KH,KW] by alternating
// least squares over the 3-way view [O, I, KH·KW].
func CP(w *tensor.Tensor, r, iters int, seed uint64) CPFactors {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("decompose: CP expects a 4-way weight, got %v", w.Shape))
	}
	o, i, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	s := kh * kw
	if r < 1 {
		panic("decompose: CP rank must be ≥ 1")
	}
	d := [3]int{o, i, s}
	x0 := unfold3(w.Data, d, 0) // [O, I·S]
	x1 := unfold3(w.Data, d, 1) // [I, O·S]
	x2 := unfold3(w.Data, d, 2) // [S, O·I]

	rng := tensor.NewRNG(seed)
	randInit := func(rows int) *linalg.Mat {
		m := linalg.NewMat(rows, r)
		for k := range m.Data {
			m.Data[k] = rng.NormFloat64()
		}
		return m
	}
	a, b, c := randInit(o), randInit(i), randInit(s)

	solveFactor := func(x, f1, f2 *linalg.Mat) *linalg.Mat {
		// F = X · (f1 ⊙ f2) · (f1ᵀf1 ∘ f2ᵀf2)⁻¹, solved as a linear system.
		kr := khatriRao(f1, f2)
		gram := hadamard(linalg.Gram(f1), linalg.Gram(f2)) // [R,R]
		// Ridge for numerical safety at over-estimated ranks.
		for k := 0; k < r; k++ {
			gram.Data[k*r+k] += 1e-10
		}
		xt := linalg.MatMul(x, kr) // [rows, R]
		// Solve gram · Fᵀ = xtᵀ  →  F = (gram⁻¹ xtᵀ)ᵀ.
		sol := linalg.Solve(gram, xt.T())
		return sol.T()
	}
	for it := 0; it < iters; it++ {
		a = solveFactor(x0, b, c)
		b = solveFactor(x1, a, c)
		c = solveFactor(x2, a, b)
	}
	return CPFactors{A: a, B: b, C: c, R: r, KH: kh, KW: kw}
}

// Reconstruct rebuilds the approximated 4-way weight.
func (f CPFactors) Reconstruct() *tensor.Tensor {
	o, i := f.A.Rows, f.B.Rows
	s := f.KH * f.KW
	out := tensor.New(o, i, f.KH, f.KW)
	for oi := 0; oi < o; oi++ {
		for ii := 0; ii < i; ii++ {
			dst := out.Data[(oi*i+ii)*s : (oi*i+ii+1)*s]
			for r := 0; r < f.R; r++ {
				ab := f.A.At(oi, r) * f.B.At(ii, r)
				if ab == 0 {
					continue
				}
				for si := 0; si < s; si++ {
					dst[si] += float32(ab * f.C.At(si, r))
				}
			}
		}
	}
	return out
}

// FConvWeight returns the fconv weight [R, I, 1, 1] = Bᵀ.
func (f CPFactors) FConvWeight() *tensor.Tensor {
	i := f.B.Rows
	w := tensor.New(f.R, i, 1, 1)
	for r := 0; r < f.R; r++ {
		for ii := 0; ii < i; ii++ {
			w.Data[r*i+ii] = float32(f.B.At(ii, r))
		}
	}
	return w
}

// CoreWeight returns the depthwise core conv weight [R, 1, KH, KW] from C.
func (f CPFactors) CoreWeight() *tensor.Tensor {
	w := tensor.New(f.R, 1, f.KH, f.KW)
	s := f.KH * f.KW
	for r := 0; r < f.R; r++ {
		for si := 0; si < s; si++ {
			w.Data[r*s+si] = float32(f.C.At(si, r))
		}
	}
	return w
}

// LConvWeight returns the lconv weight [O, R, 1, 1] = A.
func (f CPFactors) LConvWeight() *tensor.Tensor {
	o := f.A.Rows
	w := tensor.New(o, f.R, 1, 1)
	for oi := 0; oi < o; oi++ {
		for r := 0; r < f.R; r++ {
			w.Data[oi*f.R+r] = float32(f.A.At(oi, r))
		}
	}
	return w
}
