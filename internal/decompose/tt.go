package decompose

import (
	"fmt"

	"temco/internal/linalg"
	"temco/internal/tensor"
)

// TTFactors holds a Tensor-Train decomposition of a conv weight W[O,I,KH,KW]
// along the mode order (I, KH, KW, O):
//
//	W[o,i,kh,kw] ≈ Σ_{r1,r2,r3} G1[i,r1]·G2[r1,kh,r2]·G3[r2,kw,r3]·G4[r3,o]
//
// The decomposed convolution sequence is fconv (G1ᵀ, 1×1), core1 (G2 as a
// KH×1 conv, R1→R2), core2 (G3 as a 1×KW conv, R2→R3), and lconv (G4ᵀ, 1×1).
type TTFactors struct {
	G1         *linalg.Mat    // [I, R1]
	G2         *tensor.Tensor // [R2, R1, KH, 1] in conv layout
	G3         *tensor.Tensor // [R3, R2, 1, KW] in conv layout
	G4         *linalg.Mat    // [R3, O]
	R1, R2, R3 int
	KH, KW     int
}

// TT computes a TT-SVD decomposition of w [O,I,KH,KW] with the given
// bond ranks. Ranks are clamped to the maximal achievable values.
func TT(w *tensor.Tensor, r1, r2, r3 int) TTFactors {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("decompose: TT expects a 4-way weight, got %v", w.Shape))
	}
	o, i, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)

	// Permute W to [I, KH, KW, O] and flatten as [I, KH·KW·O].
	perm := linalg.NewMat(i, kh*kw*o)
	for oi := 0; oi < o; oi++ {
		for ii := 0; ii < i; ii++ {
			for h := 0; h < kh; h++ {
				for q := 0; q < kw; q++ {
					v := float64(w.Data[((oi*i+ii)*kh+h)*kw+q])
					perm.Data[ii*(kh*kw*o)+(h*kw+q)*o+oi] = v
				}
			}
		}
	}

	clamp := func(r, lim int) int {
		if r < 1 {
			return 1
		}
		if r > lim {
			return lim
		}
		return r
	}
	r1 = clamp(r1, min2(i, kh*kw*o))
	svd1 := linalg.TruncatedSVD(perm, r1)
	g1 := svd1.U // [I, R1]
	// Carry Σ·Vᵀ forward: rest1 [R1, KH·KW·O].
	rest1 := scaleRows(svd1.V.T(), svd1.S)

	// Reshape rest1 to [R1·KH, KW·O] and split again.
	m2 := linalg.NewMat(r1*kh, kw*o)
	for r := 0; r < r1; r++ {
		for h := 0; h < kh; h++ {
			for rest := 0; rest < kw*o; rest++ {
				m2.Data[(r*kh+h)*(kw*o)+rest] = rest1.Data[r*(kh*kw*o)+h*(kw*o)+rest]
			}
		}
	}
	r2 = clamp(r2, min2(r1*kh, kw*o))
	svd2 := linalg.TruncatedSVD(m2, r2)
	u2 := svd2.U                           // [R1·KH, R2]
	rest2 := scaleRows(svd2.V.T(), svd2.S) // [R2, KW·O]

	// Reshape rest2 to [R2·KW, O] and split once more.
	m3 := linalg.NewMat(r2*kw, o)
	for r := 0; r < r2; r++ {
		for q := 0; q < kw; q++ {
			for oi := 0; oi < o; oi++ {
				m3.Data[(r*kw+q)*o+oi] = rest2.Data[r*(kw*o)+q*o+oi]
			}
		}
	}
	r3 = clamp(r3, min2(r2*kw, o))
	svd3 := linalg.TruncatedSVD(m3, r3)
	u3 := svd3.U                        // [R2·KW, R3]
	g4 := scaleRows(svd3.V.T(), svd3.S) // [R3, O]

	// Pack U2 into conv layout [R2, R1, KH, 1].
	g2 := tensor.New(r2, r1, kh, 1)
	for r := 0; r < r1; r++ {
		for h := 0; h < kh; h++ {
			for rr := 0; rr < r2; rr++ {
				g2.Data[(rr*r1+r)*kh+h] = float32(u2.At(r*kh+h, rr))
			}
		}
	}
	// Pack U3 into conv layout [R3, R2, 1, KW].
	g3 := tensor.New(r3, r2, 1, kw)
	for r := 0; r < r2; r++ {
		for q := 0; q < kw; q++ {
			for rr := 0; rr < r3; rr++ {
				g3.Data[(rr*r2+r)*kw+q] = float32(u3.At(r*kw+q, rr))
			}
		}
	}
	return TTFactors{G1: g1, G2: g2, G3: g3, G4: g4, R1: r1, R2: r2, R3: r3, KH: kh, KW: kw}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// scaleRows returns m with row i scaled by s[i].
func scaleRows(m *linalg.Mat, s []float64) *linalg.Mat {
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		f := s[i]
		for j := 0; j < m.Cols; j++ {
			out.Data[i*m.Cols+j] *= f
		}
	}
	return out
}

// Reconstruct rebuilds the approximated weight tensor by contracting the
// train stage by stage (cost O(i·kh·kw·(R1·R2 + R2·R3 + R3·o)) rather than
// the naive product over all ranks at every output element).
func (f TTFactors) Reconstruct(o, i int) *tensor.Tensor {
	// Stage 1: T2[(ii,h), r2] = Σ_r1 G1[ii,r1]·G2[r2,r1,h].
	t2 := make([]float64, i*f.KH*f.R2)
	for ii := 0; ii < i; ii++ {
		for r1 := 0; r1 < f.R1; r1++ {
			g1 := f.G1.At(ii, r1)
			if g1 == 0 {
				continue
			}
			for h := 0; h < f.KH; h++ {
				base := (ii*f.KH + h) * f.R2
				for r2 := 0; r2 < f.R2; r2++ {
					t2[base+r2] += g1 * float64(f.G2.Data[(r2*f.R1+r1)*f.KH+h])
				}
			}
		}
	}
	// Stage 2: T3[(ii,h,w), r3] = Σ_r2 T2[(ii,h),r2]·G3[r3,r2,w].
	t3 := make([]float64, i*f.KH*f.KW*f.R3)
	for p := 0; p < i*f.KH; p++ {
		for r2 := 0; r2 < f.R2; r2++ {
			v := t2[p*f.R2+r2]
			if v == 0 {
				continue
			}
			for q := 0; q < f.KW; q++ {
				base := (p*f.KW + q) * f.R3
				for r3 := 0; r3 < f.R3; r3++ {
					t3[base+r3] += v * float64(f.G3.Data[(r3*f.R2+r2)*f.KW+q])
				}
			}
		}
	}
	// Stage 3: W[o,ii,h,w] = Σ_r3 T3[(ii,h,w),r3]·G4[r3,o].
	out := tensor.New(o, i, f.KH, f.KW)
	ihw := i * f.KH * f.KW
	for p := 0; p < ihw; p++ {
		for r3 := 0; r3 < f.R3; r3++ {
			v := t3[p*f.R3+r3]
			if v == 0 {
				continue
			}
			for oi := 0; oi < o; oi++ {
				out.Data[oi*ihw+p] += float32(v * f.G4.At(r3, oi))
			}
		}
	}
	return out
}

// FConvWeight returns the fconv weight [R1, I, 1, 1] = G1ᵀ.
func (f TTFactors) FConvWeight() *tensor.Tensor {
	i := f.G1.Rows
	w := tensor.New(f.R1, i, 1, 1)
	for r := 0; r < f.R1; r++ {
		for ii := 0; ii < i; ii++ {
			w.Data[r*i+ii] = float32(f.G1.At(ii, r))
		}
	}
	return w
}

// LConvWeight returns the lconv weight [O, R3, 1, 1] = G4ᵀ.
func (f TTFactors) LConvWeight() *tensor.Tensor {
	o := f.G4.Cols
	w := tensor.New(o, f.R3, 1, 1)
	for oi := 0; oi < o; oi++ {
		for r := 0; r < f.R3; r++ {
			w.Data[oi*f.R3+r] = float32(f.G4.At(r, oi))
		}
	}
	return w
}
