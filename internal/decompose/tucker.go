// Package decompose implements the tensor decompositions the paper builds
// on (§2.1): Tucker-2 (the evaluation baseline), CP, and Tensor-Train, and
// the graph rewrite that replaces convolution layers with decomposed
// convolution sequences fconv → core(s) → lconv (paper Fig. 2).
package decompose

import (
	"fmt"

	"temco/internal/linalg"
	"temco/internal/tensor"
)

// TuckerFactors holds a Tucker-2 decomposition of a conv weight
// W[O,I,KH,KW] ≈ Core ×_O UO ×_I UI with UI [I,R1], UO [O,R2],
// Core [R2,R1,KH,KW].
type TuckerFactors struct {
	UI   *linalg.Mat
	UO   *linalg.Mat
	Core *tensor.Tensor
	R1   int
	R2   int
}

// unfold returns the mode-m unfolding of a 4-way tensor w[d0,d1,d2,d3] as a
// matrix [d_m, prod(other dims)] with the other dims in natural order.
func unfold(w *tensor.Tensor, mode int) *linalg.Mat {
	d := w.Shape
	rows := d[mode]
	cols := w.Len() / rows
	m := linalg.NewMat(rows, cols)
	idx := make([]int, 4)
	col := make([]int, 0, 3)
	for i := 0; i < 4; i++ {
		if i != mode {
			col = append(col, i)
		}
	}
	strides := w.Strides()
	for r := 0; r < rows; r++ {
		idx[mode] = r
		c := 0
		for a := 0; a < d[col[0]]; a++ {
			idx[col[0]] = a
			for b := 0; b < d[col[1]]; b++ {
				idx[col[1]] = b
				for e := 0; e < d[col[2]]; e++ {
					idx[col[2]] = e
					off := idx[0]*strides[0] + idx[1]*strides[1] + idx[2]*strides[2] + idx[3]*strides[3]
					m.Data[r*cols+c] = float64(w.Data[off])
					c++
				}
			}
		}
	}
	return m
}

// Tucker2 computes a Tucker-2 decomposition of w [O,I,KH,KW] with input
// rank r1 and output rank r2 via HOSVD followed by hooiIters HOOI
// refinement sweeps.
func Tucker2(w *tensor.Tensor, r1, r2, hooiIters int) TuckerFactors {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("decompose: Tucker2 expects a 4-way weight, got %v", w.Shape))
	}
	o, i := w.Dim(0), w.Dim(1)
	if r1 < 1 || r1 > i || r2 < 1 || r2 > o {
		panic(fmt.Sprintf("decompose: Tucker2 ranks (%d,%d) out of range for %v", r1, r2, w.Shape))
	}
	// The multilinear rank along one mode is bounded by the product of the
	// other modes' ranks: after projecting onto R2 output directions, the
	// input-mode unfolding has at most R2·KH·KW independent columns (and
	// symmetrically for R1). Clamp so HOOI's projected SVDs stay full rank.
	k := w.Dim(2) * w.Dim(3)
	if r1 > r2*k {
		r1 = r2 * k
	}
	if r2 > r1*k {
		r2 = r1 * k
	}
	// HOSVD init: leading left singular vectors of each unfolding.
	uo := linalg.TruncatedSVD(unfold(w, 0), r2).U // [O, R2]
	ui := linalg.TruncatedSVD(unfold(w, 1), r1).U // [I, R1]
	// HOOI: alternate optimizing each factor against the other's projection.
	for it := 0; it < hooiIters; it++ {
		// Project out the O mode, then refit UI.
		pO := projectMode0(w, uo) // [R2, I, KH, KW]
		ui = linalg.TruncatedSVD(unfold(pO, 1), r1).U
		// Project out the I mode, then refit UO.
		pI := projectMode1(w, ui) // [O, R1, KH, KW]
		uo = linalg.TruncatedSVD(unfold(pI, 0), r2).U
	}
	// Core = W ×_O UOᵀ ×_I UIᵀ.
	core := projectMode1(projectMode0(w, uo), ui) // [R2, R1, KH, KW]
	return TuckerFactors{UI: ui, UO: uo, Core: core, R1: r1, R2: r2}
}

// projectMode0 computes w ×_0 uᵀ: out[r,i,kh,kw] = Σ_o u[o,r]·w[o,i,kh,kw].
func projectMode0(w *tensor.Tensor, u *linalg.Mat) *tensor.Tensor {
	o := w.Dim(0)
	rest := w.Len() / o
	r := u.Cols
	out := tensor.New(append([]int{r}, w.Shape[1:]...)...)
	for oi := 0; oi < o; oi++ {
		src := w.Data[oi*rest : (oi+1)*rest]
		for ri := 0; ri < r; ri++ {
			f := float32(u.At(oi, ri))
			if f == 0 {
				continue
			}
			dst := out.Data[ri*rest : (ri+1)*rest]
			for k, v := range src {
				dst[k] += f * v
			}
		}
	}
	return out
}

// projectMode1 computes w ×_1 uᵀ: out[o,r,kh,kw] = Σ_i u[i,r]·w[o,i,kh,kw].
func projectMode1(w *tensor.Tensor, u *linalg.Mat) *tensor.Tensor {
	o, i := w.Dim(0), w.Dim(1)
	k := w.Len() / (o * i)
	r := u.Cols
	out := tensor.New(o, r, w.Dim(2), w.Dim(3))
	for oi := 0; oi < o; oi++ {
		for ii := 0; ii < i; ii++ {
			src := w.Data[(oi*i+ii)*k : (oi*i+ii+1)*k]
			for ri := 0; ri < r; ri++ {
				f := float32(u.At(ii, ri))
				if f == 0 {
					continue
				}
				dst := out.Data[(oi*r+ri)*k : (oi*r+ri+1)*k]
				for kk, v := range src {
					dst[kk] += f * v
				}
			}
		}
	}
	return out
}

// Reconstruct rebuilds the approximated weight Ŵ = Core ×_O UO ×_I UI,
// contracting one mode at a time (O(R2·R1·i·k + o·R2·i·k) instead of the
// naive O(o·i·R1·R2·k) five-deep loop).
func (f TuckerFactors) Reconstruct(o, i, kh, kw int) *tensor.Tensor {
	k := kh * kw
	// Stage 1: T[r2, ii, :] = Σ_r1 UI[ii,r1]·Core[r2,r1,:].
	t := make([]float64, f.R2*i*k)
	for r2 := 0; r2 < f.R2; r2++ {
		for r1 := 0; r1 < f.R1; r1++ {
			src := f.Core.Data[(r2*f.R1+r1)*k : (r2*f.R1+r1+1)*k]
			for ii := 0; ii < i; ii++ {
				fi := f.UI.At(ii, r1)
				if fi == 0 {
					continue
				}
				dst := t[(r2*i+ii)*k : (r2*i+ii+1)*k]
				for kk, v := range src {
					dst[kk] += fi * float64(v)
				}
			}
		}
	}
	// Stage 2: Ŵ[oi, ii, :] = Σ_r2 UO[oi,r2]·T[r2, ii, :].
	out := tensor.New(o, i, kh, kw)
	for oi := 0; oi < o; oi++ {
		for r2 := 0; r2 < f.R2; r2++ {
			fo := f.UO.At(oi, r2)
			if fo == 0 {
				continue
			}
			src := t[r2*i*k : (r2+1)*i*k]
			dst := out.Data[oi*i*k : (oi+1)*i*k]
			for p, v := range src {
				dst[p] += float32(fo * v)
			}
		}
	}
	return out
}

// FConvWeight returns the fconv (reducing 1×1) weight [R1, I, 1, 1]
// = UIᵀ.
func (f TuckerFactors) FConvWeight() *tensor.Tensor {
	i := f.UI.Rows
	w := tensor.New(f.R1, i, 1, 1)
	for r := 0; r < f.R1; r++ {
		for ii := 0; ii < i; ii++ {
			w.Data[r*i+ii] = float32(f.UI.At(ii, r))
		}
	}
	return w
}

// LConvWeight returns the lconv (restoring 1×1) weight [O, R2, 1, 1] = UO.
func (f TuckerFactors) LConvWeight() *tensor.Tensor {
	o := f.UO.Rows
	w := tensor.New(o, f.R2, 1, 1)
	for oi := 0; oi < o; oi++ {
		for r := 0; r < f.R2; r++ {
			w.Data[oi*f.R2+r] = float32(f.UO.At(oi, r))
		}
	}
	return w
}
