package ops

import (
	"math"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// Like the elementwise kernels, the pooling family branches to a plain
// range call at Workers <= 1 so steady-state execution allocates nothing
// (closures handed to parallelFor escape to the heap).

// MaxPool computes 2-D max pooling over [N,C,H,W]. Padding positions are
// ignored (treated as -inf), matching framework semantics.
func MaxPool(out, in *tensor.Tensor, a *ir.PoolAttrs) {
	poolDispatch(out, in, a, true)
}

// AvgPool computes 2-D average pooling over [N,C,H,W]. The divisor is the
// full kernel area (count_include_pad semantics with zero padding).
func AvgPool(out, in *tensor.Tensor, a *ir.PoolAttrs) {
	poolDispatch(out, in, a, false)
}

func poolDispatch(out, in *tensor.Tensor, a *ir.PoolAttrs, isMax bool) {
	n, c := in.Dim(0), in.Dim(1)
	if Workers <= 1 {
		poolRange(out, in, a, isMax, 0, n*c)
		return
	}
	parallelFor(n*c, func(lo, hi int) { poolRange(out, in, a, isMax, lo, hi) })
}

func poolRange(out, in *tensor.Tensor, a *ir.PoolAttrs, isMax bool, lo, hi int) {
	inH, inW := in.Dim(2), in.Dim(3)
	outH, outW := out.Dim(2), out.Dim(3)
	area := float32(a.KH * a.KW)
	for idx := lo; idx < hi; idx++ {
		inPlane := idx * inH * inW
		outPlane := idx * outH * outW
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				hBase := oh*a.SH - a.PH
				wBase := ow*a.SW - a.PW
				var acc float32
				if isMax {
					acc = float32(math.Inf(-1))
				}
				for r := 0; r < a.KH; r++ {
					ih := hBase + r
					if ih < 0 || ih >= inH {
						continue
					}
					row := inPlane + ih*inW
					for q := 0; q < a.KW; q++ {
						iw := wBase + q
						if iw < 0 || iw >= inW {
							continue
						}
						v := in.Data[row+iw]
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
					}
				}
				if !isMax {
					acc /= area
				}
				out.Data[outPlane+oh*outW+ow] = acc
			}
		}
	}
}

// GlobalAvgPool averages each [H,W] plane to a single value: [N,C,H,W] →
// [N,C,1,1].
func GlobalAvgPool(out, in *tensor.Tensor) {
	n, c := in.Dim(0), in.Dim(1)
	hw := in.Dim(2) * in.Dim(3)
	if Workers <= 1 {
		globalAvgRange(out, in, hw, 0, n*c)
		return
	}
	parallelFor(n*c, func(lo, hi int) { globalAvgRange(out, in, hw, lo, hi) })
}

func globalAvgRange(out, in *tensor.Tensor, hw, lo, hi int) {
	inv := float32(1) / float32(hw)
	for idx := lo; idx < hi; idx++ {
		base := idx * hw
		var s float32
		for i := 0; i < hw; i++ {
			s += in.Data[base+i]
		}
		out.Data[idx] = s * inv
	}
}

// Upsample performs nearest-neighbour upsampling by an integer scale.
func Upsample(out, in *tensor.Tensor, scale int) {
	n, c := in.Dim(0), in.Dim(1)
	if Workers <= 1 {
		upsampleRange(out, in, scale, 0, n*c)
		return
	}
	parallelFor(n*c, func(lo, hi int) { upsampleRange(out, in, scale, lo, hi) })
}

func upsampleRange(out, in *tensor.Tensor, scale, lo, hi int) {
	inH, inW := in.Dim(2), in.Dim(3)
	outH, outW := out.Dim(2), out.Dim(3)
	for idx := lo; idx < hi; idx++ {
		inPlane := idx * inH * inW
		outPlane := idx * outH * outW
		for oh := 0; oh < outH; oh++ {
			ih := oh / scale
			inRow := inPlane + ih*inW
			outRow := outPlane + oh*outW
			for ow := 0; ow < outW; ow++ {
				out.Data[outRow+ow] = in.Data[inRow+ow/scale]
			}
		}
	}
}

// Concat concatenates the inputs along the channel dimension.
func Concat(out *tensor.Tensor, ins []*tensor.Tensor) {
	n := out.Dim(0)
	if Workers <= 1 {
		concatRange(out, ins, 0, n)
		return
	}
	parallelFor(n, func(lo, hi int) { concatRange(out, ins, lo, hi) })
}

func concatRange(out *tensor.Tensor, ins []*tensor.Tensor, lo, hi int) {
	outC := out.Dim(1)
	hw := out.Dim(2) * out.Dim(3)
	for bi := lo; bi < hi; bi++ {
		cOff := 0
		for _, in := range ins {
			c := in.Dim(1)
			src := in.Data[bi*c*hw : (bi+1)*c*hw]
			dst := out.Data[(bi*outC+cOff)*hw : (bi*outC+cOff+c)*hw]
			copy(dst, src)
			cOff += c
		}
	}
}

// ConcatPartial concatenates along the channel dimension like Concat, but
// skips inputs whose rows the alias plan already placed inside out (their
// producers wrote the destination directly; copying would be a self-move).
// It returns the bytes actually copied. skip must have one entry per
// input; a repeated input may be skipped at one occurrence and copied at
// another — ranges inside out are disjoint per occurrence, so the copy is
// safe either way.
func ConcatPartial(out *tensor.Tensor, ins []*tensor.Tensor, skip []bool) int64 {
	n := out.Dim(0)
	var copied int64
	for i, in := range ins {
		if !skip[i] {
			copied += int64(in.Len()) * 4
		}
	}
	if Workers <= 1 {
		concatPartialRange(out, ins, skip, 0, n)
		return copied
	}
	parallelFor(n, func(lo, hi int) { concatPartialRange(out, ins, skip, lo, hi) })
	return copied
}

func concatPartialRange(out *tensor.Tensor, ins []*tensor.Tensor, skip []bool, lo, hi int) {
	outC := out.Dim(1)
	hw := out.Dim(2) * out.Dim(3)
	for bi := lo; bi < hi; bi++ {
		cOff := 0
		for i, in := range ins {
			c := in.Dim(1)
			if !skip[i] {
				src := in.Data[bi*c*hw : (bi+1)*c*hw]
				dst := out.Data[(bi*outC+cOff)*hw : (bi*outC+cOff+c)*hw]
				copy(dst, src)
			}
			cOff += c
		}
	}
}
