package ops

import (
	"math"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// MaxPool computes 2-D max pooling over [N,C,H,W]. Padding positions are
// ignored (treated as -inf), matching framework semantics.
func MaxPool(out, in *tensor.Tensor, a *ir.PoolAttrs) {
	poolRun(out, in, a, true)
}

// AvgPool computes 2-D average pooling over [N,C,H,W]. The divisor is the
// full kernel area (count_include_pad semantics with zero padding).
func AvgPool(out, in *tensor.Tensor, a *ir.PoolAttrs) {
	poolRun(out, in, a, false)
}

func poolRun(out, in *tensor.Tensor, a *ir.PoolAttrs, isMax bool) {
	n, c := in.Dim(0), in.Dim(1)
	inH, inW := in.Dim(2), in.Dim(3)
	outH, outW := out.Dim(2), out.Dim(3)
	area := float32(a.KH * a.KW)
	parallelFor(n*c, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			inPlane := idx * inH * inW
			outPlane := idx * outH * outW
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					hBase := oh*a.SH - a.PH
					wBase := ow*a.SW - a.PW
					var acc float32
					if isMax {
						acc = float32(math.Inf(-1))
					}
					for r := 0; r < a.KH; r++ {
						ih := hBase + r
						if ih < 0 || ih >= inH {
							continue
						}
						row := inPlane + ih*inW
						for q := 0; q < a.KW; q++ {
							iw := wBase + q
							if iw < 0 || iw >= inW {
								continue
							}
							v := in.Data[row+iw]
							if isMax {
								if v > acc {
									acc = v
								}
							} else {
								acc += v
							}
						}
					}
					if !isMax {
						acc /= area
					}
					out.Data[outPlane+oh*outW+ow] = acc
				}
			}
		}
	})
}

// GlobalAvgPool averages each [H,W] plane to a single value: [N,C,H,W] →
// [N,C,1,1].
func GlobalAvgPool(out, in *tensor.Tensor) {
	n, c := in.Dim(0), in.Dim(1)
	hw := in.Dim(2) * in.Dim(3)
	inv := float32(1) / float32(hw)
	parallelFor(n*c, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			base := idx * hw
			var s float32
			for i := 0; i < hw; i++ {
				s += in.Data[base+i]
			}
			out.Data[idx] = s * inv
		}
	})
}

// Upsample performs nearest-neighbour upsampling by an integer scale.
func Upsample(out, in *tensor.Tensor, scale int) {
	n, c := in.Dim(0), in.Dim(1)
	inH, inW := in.Dim(2), in.Dim(3)
	outH, outW := out.Dim(2), out.Dim(3)
	parallelFor(n*c, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			inPlane := idx * inH * inW
			outPlane := idx * outH * outW
			for oh := 0; oh < outH; oh++ {
				ih := oh / scale
				inRow := inPlane + ih*inW
				outRow := outPlane + oh*outW
				for ow := 0; ow < outW; ow++ {
					out.Data[outRow+ow] = in.Data[inRow+ow/scale]
				}
			}
		}
	})
}

// Concat concatenates the inputs along the channel dimension.
func Concat(out *tensor.Tensor, ins []*tensor.Tensor) {
	n := out.Dim(0)
	outC := out.Dim(1)
	hw := out.Dim(2) * out.Dim(3)
	parallelFor(n, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			cOff := 0
			for _, in := range ins {
				c := in.Dim(1)
				src := in.Data[bi*c*hw : (bi+1)*c*hw]
				dst := out.Data[(bi*outC+cOff)*hw : (bi*outC+cOff+c)*hw]
				copy(dst, src)
				cOff += c
			}
		}
	})
}
