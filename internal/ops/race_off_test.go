//go:build !race

package ops

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count tests skip under -race.
const raceEnabled = false
