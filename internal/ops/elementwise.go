package ops

import (
	"math"

	"temco/internal/gemm"
	"temco/internal/tensor"
)

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// The elementwise kernels branch to a plain range-function call when the
// worker count is 1: a closure handed to parallelFor escapes to the heap,
// and the compiled engine's steady-state path must allocate nothing.

// ReLU applies max(0,x) elementwise.
func ReLU(out, in *tensor.Tensor) {
	if Workers <= 1 {
		reluRange(out, in, 0, in.Len())
		return
	}
	parallelFor(in.Len(), func(lo, hi int) { reluRange(out, in, lo, hi) })
}

func reluRange(out, in *tensor.Tensor, lo, hi int) {
	if lo >= hi {
		return
	}
	dst := out.Data[lo:hi]
	if src := in.Data[lo:hi]; &dst[0] != &src[0] {
		copy(dst, src)
	}
	gemm.ReLU(dst)
}

// SiLU applies x·σ(x) elementwise.
func SiLU(out, in *tensor.Tensor) {
	if Workers <= 1 {
		siluRange(out, in, 0, in.Len())
		return
	}
	parallelFor(in.Len(), func(lo, hi int) { siluRange(out, in, lo, hi) })
}

func siluRange(out, in *tensor.Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		v := in.Data[i]
		out.Data[i] = v * sigmoid32(v)
	}
}

// Sigmoid applies σ(x) elementwise.
func Sigmoid(out, in *tensor.Tensor) {
	if Workers <= 1 {
		sigmoidRange(out, in, 0, in.Len())
		return
	}
	parallelFor(in.Len(), func(lo, hi int) { sigmoidRange(out, in, lo, hi) })
}

func sigmoidRange(out, in *tensor.Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		out.Data[i] = sigmoid32(in.Data[i])
	}
}

// applyAct applies one scalar activation value; used by the fused kernel so
// its math matches the standalone kernels exactly.
func applyAct(kind actKind, v float32) float32 {
	switch kind {
	case actReLU:
		if v < 0 {
			return 0
		}
		return v
	case actSiLU:
		return v * sigmoid32(v)
	case actSigmoid:
		return sigmoid32(v)
	default:
		return v
	}
}

type actKind int

const (
	actIdentity actKind = iota
	actReLU
	actSiLU
	actSigmoid
)

// BatchNorm applies the folded per-channel affine y = scale[c]·x + shift[c]
// over an [N,C,H,W] tensor.
func BatchNorm(out, in *tensor.Tensor, scale, shift *tensor.Tensor) {
	n, c := in.Dim(0), in.Dim(1)
	hw := in.Dim(2) * in.Dim(3)
	if Workers <= 1 {
		batchNormRange(out, in, scale, shift, c, hw, 0, n*c)
		return
	}
	parallelFor(n*c, func(lo, hi int) { batchNormRange(out, in, scale, shift, c, hw, lo, hi) })
}

func batchNormRange(out, in, scale, shift *tensor.Tensor, c, hw, lo, hi int) {
	for idx := lo; idx < hi; idx++ {
		ch := idx % c
		s, sh := scale.Data[ch], shift.Data[ch]
		base := idx * hw
		for i := 0; i < hw; i++ {
			out.Data[base+i] = s*in.Data[base+i] + sh
		}
	}
}

// Add computes out = a + b elementwise.
func Add(out, a, b *tensor.Tensor) {
	if Workers <= 1 {
		addRange(out, a, b, 0, a.Len())
		return
	}
	parallelFor(a.Len(), func(lo, hi int) { addRange(out, a, b, lo, hi) })
}

func addRange(out, a, b *tensor.Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Softmax applies a numerically stable softmax over the last dimension of
// an [N,F] tensor.
func Softmax(out, in *tensor.Tensor) {
	n, f := in.Dim(0), in.Dim(1)
	if Workers <= 1 {
		softmaxRange(out, in, f, 0, n)
		return
	}
	parallelFor(n, func(lo, hi int) { softmaxRange(out, in, f, lo, hi) })
}

func softmaxRange(out, in *tensor.Tensor, f, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		row := in.Data[bi*f : (bi+1)*f]
		orow := out.Data[bi*f : (bi+1)*f]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxV))
			orow[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range orow {
			orow[i] *= inv
		}
	}
}
