package ops

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"temco/internal/gemm"
	"temco/internal/guard"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// Table test for the TEMCO_WORKERS env override: positive integers apply,
// anything else is a typed error and leaves the worker count untouched.
func TestWorkersFromEnv(t *testing.T) {
	old := Workers
	defer SetWorkers(old)
	cases := []struct {
		env     string
		want    int // expected Workers afterwards (0 = unchanged)
		wantErr bool
	}{
		{"", 0, false},
		{"1", 1, false},
		{"3", 3, false},
		{"0", 0, true},
		{"-2", 0, true},
		{"abc", 0, true},
		{"2.5", 0, true},
		{" 4", 0, true},
		{"999999999999999999999999", 0, true},
	}
	for _, c := range cases {
		SetWorkers(old)
		t.Setenv("TEMCO_WORKERS", c.env)
		got, err := WorkersFromEnv()
		if c.wantErr {
			if err == nil {
				t.Errorf("TEMCO_WORKERS=%q: want error, got none (workers=%d)", c.env, got)
				continue
			}
			if !errors.Is(err, guard.ErrInvalidModel) {
				t.Errorf("TEMCO_WORKERS=%q: want ErrInvalidModel, got %v", c.env, err)
			}
			if guard.ExitCode(err) != guard.ExitInvalid {
				t.Errorf("TEMCO_WORKERS=%q: want exit code %d, got %d", c.env, guard.ExitInvalid, guard.ExitCode(err))
			}
			if Workers != old {
				t.Errorf("TEMCO_WORKERS=%q: bad value must not change Workers (%d -> %d)", c.env, old, Workers)
			}
			continue
		}
		if err != nil {
			t.Errorf("TEMCO_WORKERS=%q: unexpected error %v", c.env, err)
			continue
		}
		want := c.want
		if want == 0 {
			want = old
		}
		if got != want || Workers != want {
			t.Errorf("TEMCO_WORKERS=%q: got %d (Workers=%d), want %d", c.env, got, Workers, want)
		}
	}
}

// A pre-canceled context must stop parallelForCtx almost immediately: with
// cancellation checked every cancelStride tasks per worker, at most
// workers*cancelStride tasks may run.
func TestParallelForCtxCancellation(t *testing.T) {
	old := Workers
	defer SetWorkers(old)
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		err := parallelForCtx(ctx, 1_000_000, func(lo, hi int) {
			ran.Add(int64(hi - lo))
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", w, err)
		}
		if n := ran.Load(); n > int64(w*cancelStride) {
			t.Fatalf("workers=%d: canceled run still executed %d tasks (max %d)", w, n, w*cancelStride)
		}
	}
}

// Without a cancelable context, parallelForCtx must cover every task
// exactly once (the sub-chunking must not lose or duplicate ranges), and
// the same must hold mid-range with a cancelable but never-canceled ctx.
func TestParallelForCtxCoversAllTasks(t *testing.T) {
	old := Workers
	defer SetWorkers(old)
	for _, w := range []int{1, 3, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 5, 97, 1024} {
			for _, cancelable := range []bool{false, true} {
				ctx := context.Background()
				if cancelable {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					defer cancel()
				}
				hits := make([]atomic.Int32, n)
				if err := parallelForCtx(ctx, n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						hits[i].Add(1)
					}
				}); err != nil {
					t.Fatalf("w=%d n=%d: %v", w, n, err)
				}
				for i := range hits {
					if hits[i].Load() != 1 {
						t.Fatalf("w=%d n=%d cancelable=%v: task %d ran %d times", w, n, cancelable, i, hits[i].Load())
					}
				}
			}
		}
	}
}

// A panic in a parallel worker must re-raise on the calling goroutine so
// guard.Safe can recover it — not kill the process.
func TestParallelForPropagatesWorkerPanic(t *testing.T) {
	old := Workers
	defer SetWorkers(old)
	SetWorkers(4)
	err := guard.Safe("test", func() error {
		parallelFor(64, func(lo, hi int) {
			if lo >= 32 {
				panic("worker exploded")
			}
		})
		return nil
	})
	if !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("worker panic must surface as ErrInternal, got %v", err)
	}
	// Same through the ctx-aware path.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = guard.Safe("test", func() error {
		return parallelForCtx(ctx, 64, func(lo, hi int) { panic("boom") })
	})
	if !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("ctx worker panic must surface as ErrInternal, got %v", err)
	}
}

// Canceling mid-kernel: ConvAutoCtx and FusedCtx on a cancelable context
// must return the context error and, when run to completion, match the
// plain kernels bit-for-bit.
func TestCtxKernelsMatchAndCancel(t *testing.T) {
	r := tensor.NewRNG(11)
	a := &ir.ConvAttrs{InC: 4, OutC: 6, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
	in := randT(r, 2, 4, 16, 16)
	w := randT(r, 6, 4, 3, 3)
	b := randT(r, 6)

	want := tensor.New(2, 6, 16, 16)
	ConvAuto(want, in, w, b, a)

	ctx, cancel := context.WithCancel(context.Background())
	got := tensor.New(2, 6, 16, 16)
	if err := ConvAutoCtx(ctx, got, in, w, b, a); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("ctx conv deviates by %v", d)
	}
	cancel()
	if err := ConvAutoCtx(ctx, got, in, w, b, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled conv: want context.Canceled, got %v", err)
	}

	fa := &ir.FusedAttrs{InC: 4, MidC: 16, OutC: 4, Act: ir.KindReLU,
		LW: randT(r, 16, 4, 1, 1), FW: randT(r, 4, 16, 1, 1)}
	fwant := tensor.New(2, 4, 16, 16)
	Fused(fwant, in, fa)
	ctx2, cancel2 := context.WithCancel(context.Background())
	fgot := tensor.New(2, 4, 16, 16)
	if err := FusedCtx(ctx2, fgot, in, fa); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(fwant, fgot); d != 0 {
		t.Fatalf("ctx fused deviates by %v", d)
	}
	cancel2()
	if err := FusedCtx(ctx2, fgot, in, fa); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled fused: want context.Canceled, got %v", err)
	}
}

// A canceled context must stop Linear before it touches the output: the
// ctx-aware path used to write the bias rows first and only then consult
// the context (via the GEMM), leaving a half-written tensor behind. Both
// the plain and the pre-packed entry points must return the context error
// with the output untouched, and match Linear exactly when run.
func TestLinearCtxCancelWritesNothing(t *testing.T) {
	r := tensor.NewRNG(13)
	a := &ir.LinearAttrs{In: 24, Out: 10}
	in := randT(r, 3, 24)
	w := randT(r, 10, 24)
	b := randT(r, 10)
	pw := gemm.PackBT(a.In, a.Out, w.Data, a.In)

	want := tensor.New(3, 10)
	Linear(want, in, w, b, a)

	ctx := context.Background()
	got := tensor.New(3, 10)
	if err := LinearCtx(ctx, got, in, w, b, a); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("ctx linear deviates by %v", d)
	}
	pgot := tensor.New(3, 10)
	if err := LinearPrePackedCtx(ctx, pgot, in, pw, b, a); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, pgot); d != 0 {
		t.Fatalf("pre-packed linear deviates by %v", d)
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	const sentinel = -123.5
	for name, run := range map[string]func(out *tensor.Tensor) error{
		"LinearCtx":          func(out *tensor.Tensor) error { return LinearCtx(cctx, out, in, w, b, a) },
		"LinearPrePackedCtx": func(out *tensor.Tensor) error { return LinearPrePackedCtx(cctx, out, in, pw, b, a) },
	} {
		out := tensor.New(3, 10)
		out.Fill(sentinel)
		if err := run(out); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", name, err)
		}
		for i, v := range out.Data {
			if v != sentinel {
				t.Fatalf("%s: wrote out[%d]=%v after cancellation", name, i, v)
			}
		}
	}
}
