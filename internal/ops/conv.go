package ops

import (
	"context"
	"fmt"

	"temco/internal/gemm"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// Conv2D computes a direct 2-D convolution. in is [N,C,H,W], w is
// [OutC, InC/G, KH, KW], b is [OutC] (nil allowed), out is [N,OutC,OH,OW].
// Work is parallelized over (batch × output channel) pairs.
func Conv2D(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) {
	conv2DCtx(context.Background(), out, in, w, b, a)
}

// conv2DCtx is Conv2D with a periodic cancellation check between
// (batch × channel) output planes. On cancellation the output is partially
// written and must be discarded by the caller.
func conv2DCtx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) error {
	n := in.Dim(0)
	inC, inH, inW := in.Dim(1), in.Dim(2), in.Dim(3)
	outC, outH, outW := out.Dim(1), out.Dim(2), out.Dim(3)
	g := a.Groups
	if g == 0 {
		g = 1
	}
	if inC != a.InC || outC != a.OutC {
		panic(fmt.Sprintf("ops: Conv2D channel mismatch: in %d/%d out %d/%d", inC, a.InC, outC, a.OutC))
	}
	if ctx.Done() == nil && Workers <= 1 {
		// Serial fast path: the run state stays on the stack (see fusedRun),
		// so steady-state inference allocates nothing.
		cr := directConvRun{out: out, in: in, w: w, b: b,
			inC: inC, inH: inH, inW: inW, outC: outC, outH: outH, outW: outW,
			icg: a.InC / g, ocg: a.OutC / g,
			kh: a.KH, kw: a.KW, sh: a.SH, sw: a.SW, ph: a.PH, pw: a.PW}
		cr.run(0, n*outC)
		return nil
	}
	cr := directConvRun{out: out, in: in, w: w, b: b,
		inC: inC, inH: inH, inW: inW, outC: outC, outH: outH, outW: outW,
		icg: a.InC / g, ocg: a.OutC / g,
		kh: a.KH, kw: a.KW, sh: a.SH, sw: a.SW, ph: a.PH, pw: a.PW}
	return parallelForCtx(ctx, n*outC, cr.run)
}

// directConvRun carries the per-invocation state of the direct conv kernel
// so the worker body is a method, not an escaping closure (see fusedRun).
type directConvRun struct {
	out, in, w, b          *tensor.Tensor
	inC, inH, inW          int
	outC, outH, outW       int
	icg, ocg               int
	kh, kw, sh, sw, ph, pw int
}

// run computes output planes [lo,hi) over the flattened (batch × channel)
// index. Safe to call concurrently on disjoint ranges.
func (cr *directConvRun) run(lo, hi int) {
	out, in, w, b := cr.out, cr.in, cr.w, cr.b
	inC, inH, inW := cr.inC, cr.inH, cr.inW
	outC, outH, outW := cr.outC, cr.outH, cr.outW
	icg, ocg := cr.icg, cr.ocg
	kh, kw, sh, sw, ph, pw := cr.kh, cr.kw, cr.sh, cr.sw, cr.ph, cr.pw
	for idx := lo; idx < hi; idx++ {
		bIdx := idx / outC
		oc := idx % outC
		grp := oc / ocg
		bias := float32(0)
		if b != nil {
			bias = b.Data[oc]
		}
		wOff := oc * icg * kh * kw
		outOff := (bIdx*outC + oc) * outH * outW
		for oh := 0; oh < outH; oh++ {
			ihBase := oh*sh - ph
			for ow := 0; ow < outW; ow++ {
				iwBase := ow*sw - pw
				acc := bias
				for ic := 0; ic < icg; ic++ {
					gic := grp*icg + ic
					inPlane := (bIdx*inC + gic) * inH * inW
					wPlane := wOff + ic*kh*kw
					for r := 0; r < kh; r++ {
						ih := ihBase + r
						if ih < 0 || ih >= inH {
							continue
						}
						rowIn := inPlane + ih*inW
						rowW := wPlane + r*kw
						for c := 0; c < kw; c++ {
							iw := iwBase + c
							if iw < 0 || iw >= inW {
								continue
							}
							acc += in.Data[rowIn+iw] * w.Data[rowW+c]
						}
					}
				}
				out.Data[outOff+oh*outW+ow] = acc
			}
		}
	}
}

// Linear computes out = in·Wᵀ + b with in [N,In], w [Out,In], b [Out]
// (nil allowed), out [N,Out]: one GEMM with the weight consumed transposed
// in place (no materialized Wᵀ).
func Linear(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.LinearAttrs) {
	n := in.Dim(0)
	beta := linearBias(out, b, n, a.Out)
	gemm.GemmBT(n, a.Out, a.In, 1, in.Data, a.In, w.Data, a.In, beta, out.Data, a.Out)
}

// LinearCtx is Linear with the cancellation contract the conv kernels
// honor: a context that is already done returns its error before any work
// — in particular before the bias rows are seeded, which the plain path
// used to write even for requests canceled while queued. Linear is a
// single GEMM, so there is no mid-kernel check to make.
func LinearCtx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.LinearAttrs) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	Linear(out, in, w, b, a)
	return nil
}

// LinearPrePackedCtx is LinearCtx with the [Out, In] weight supplied
// pre-packed by gemm.PackBT — the plan-once/run-many form the compiled
// engine uses. Bit-identical to Linear on the same operands.
func LinearPrePackedCtx(ctx context.Context, out, in *tensor.Tensor, pw *gemm.PackedB, b *tensor.Tensor, a *ir.LinearAttrs) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := in.Dim(0)
	beta := linearBias(out, b, n, a.Out)
	gemm.GemmPrePackedBT(n, 1, in.Data, a.In, pw, beta, out.Data, a.Out)
	return nil
}

// linearBias seeds every output row with the bias vector and returns the
// GEMM beta: 1 when seeded, 0 (never read C) without a bias.
func linearBias(out *tensor.Tensor, b *tensor.Tensor, n, width int) float32 {
	if b == nil {
		return 0
	}
	for bi := 0; bi < n; bi++ {
		copy(out.Data[bi*width:(bi+1)*width], b.Data)
	}
	return 1
}
