package ops

import (
	"context"
	"fmt"

	"temco/internal/gemm"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// Conv2D computes a direct 2-D convolution. in is [N,C,H,W], w is
// [OutC, InC/G, KH, KW], b is [OutC] (nil allowed), out is [N,OutC,OH,OW].
// Work is parallelized over (batch × output channel) pairs.
func Conv2D(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) {
	conv2DCtx(context.Background(), out, in, w, b, a)
}

// conv2DCtx is Conv2D with a periodic cancellation check between
// (batch × channel) output planes. On cancellation the output is partially
// written and must be discarded by the caller.
func conv2DCtx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) error {
	n := in.Dim(0)
	inC, inH, inW := in.Dim(1), in.Dim(2), in.Dim(3)
	outC, outH, outW := out.Dim(1), out.Dim(2), out.Dim(3)
	g := a.Groups
	if g == 0 {
		g = 1
	}
	if inC != a.InC || outC != a.OutC {
		panic(fmt.Sprintf("ops: Conv2D channel mismatch: in %d/%d out %d/%d", inC, a.InC, outC, a.OutC))
	}
	icg := a.InC / g // input channels per group
	ocg := a.OutC / g
	kh, kw := a.KH, a.KW
	sh, sw := a.SH, a.SW
	ph, pw := a.PH, a.PW

	return parallelForCtx(ctx, n*outC, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			bIdx := idx / outC
			oc := idx % outC
			grp := oc / ocg
			bias := float32(0)
			if b != nil {
				bias = b.Data[oc]
			}
			wOff := oc * icg * kh * kw
			outOff := (bIdx*outC + oc) * outH * outW
			for oh := 0; oh < outH; oh++ {
				ihBase := oh*sh - ph
				for ow := 0; ow < outW; ow++ {
					iwBase := ow*sw - pw
					acc := bias
					for ic := 0; ic < icg; ic++ {
						gic := grp*icg + ic
						inPlane := (bIdx*inC + gic) * inH * inW
						wPlane := wOff + ic*kh*kw
						for r := 0; r < kh; r++ {
							ih := ihBase + r
							if ih < 0 || ih >= inH {
								continue
							}
							rowIn := inPlane + ih*inW
							rowW := wPlane + r*kw
							for c := 0; c < kw; c++ {
								iw := iwBase + c
								if iw < 0 || iw >= inW {
									continue
								}
								acc += in.Data[rowIn+iw] * w.Data[rowW+c]
							}
						}
					}
					out.Data[outOff+oh*outW+ow] = acc
				}
			}
		}
	})
}

// Linear computes out = in·Wᵀ + b with in [N,In], w [Out,In], b [Out]
// (nil allowed), out [N,Out]: one GEMM with the weight consumed transposed
// in place (no materialized Wᵀ).
func Linear(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.LinearAttrs) {
	n := in.Dim(0)
	beta := float32(0)
	if b != nil {
		for bi := 0; bi < n; bi++ {
			copy(out.Data[bi*a.Out:(bi+1)*a.Out], b.Data)
		}
		beta = 1
	}
	gemm.GemmBT(n, a.Out, a.In, 1, in.Data, a.In, w.Data, a.In, beta, out.Data, a.Out)
}
