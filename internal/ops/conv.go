package ops

import (
	"context"
	"fmt"

	"temco/internal/gemm"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// Conv2D computes a direct 2-D convolution. in is [N,C,H,W], w is
// [OutC, InC/G, KH, KW], b is [OutC] (nil allowed), out is [N,OutC,OH,OW].
// Work is parallelized over (batch × output channel) pairs.
func Conv2D(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) {
	conv2DCtx(context.Background(), out, in, w, b, a)
}

// conv2DCtx is Conv2D with a periodic cancellation check between
// (batch × channel) output planes. On cancellation the output is partially
// written and must be discarded by the caller.
func conv2DCtx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) error {
	n := in.Dim(0)
	inC, inH, inW := in.Dim(1), in.Dim(2), in.Dim(3)
	outC, outH, outW := out.Dim(1), out.Dim(2), out.Dim(3)
	g := a.Groups
	if g == 0 {
		g = 1
	}
	if inC != a.InC || outC != a.OutC {
		panic(fmt.Sprintf("ops: Conv2D channel mismatch: in %d/%d out %d/%d", inC, a.InC, outC, a.OutC))
	}
	// The run structs are declared once per branch, not hoisted: a variable
	// whose method value feeds parallelForCtx escapes to the heap on every
	// path, and the serial fast paths must stay allocation-free.
	if n >= batchGroup {
		// Batched inference: process sample groups together so each weight
		// tap is loaded once per group and the per-element accumulation runs
		// batchGroup independent chains instead of one latency-bound chain.
		// Each sample's own add order is unchanged, so outputs stay
		// bit-identical to the per-sample path (and to batch 1).
		groups := (n + batchGroup - 1) / batchGroup
		if ctx.Done() == nil && Workers <= 1 {
			// Serial fast path: the run state stays on the stack (see
			// fusedRun), so steady-state inference allocates nothing.
			br := directConvBatchRun{directConvRun: directConvRun{out: out, in: in, w: w, b: b,
				inC: inC, inH: inH, inW: inW, outC: outC, outH: outH, outW: outW,
				icg: a.InC / g, ocg: a.OutC / g,
				kh: a.KH, kw: a.KW, sh: a.SH, sw: a.SW, ph: a.PH, pw: a.PW}, n: n}
			br.run(0, groups*outC)
			return nil
		}
		br := directConvBatchRun{directConvRun: directConvRun{out: out, in: in, w: w, b: b,
			inC: inC, inH: inH, inW: inW, outC: outC, outH: outH, outW: outW,
			icg: a.InC / g, ocg: a.OutC / g,
			kh: a.KH, kw: a.KW, sh: a.SH, sw: a.SW, ph: a.PH, pw: a.PW}, n: n}
		return parallelForCtx(ctx, groups*outC, br.run)
	}
	if ctx.Done() == nil && Workers <= 1 {
		cr := directConvRun{out: out, in: in, w: w, b: b,
			inC: inC, inH: inH, inW: inW, outC: outC, outH: outH, outW: outW,
			icg: a.InC / g, ocg: a.OutC / g,
			kh: a.KH, kw: a.KW, sh: a.SH, sw: a.SW, ph: a.PH, pw: a.PW}
		cr.run(0, n*outC)
		return nil
	}
	cr := directConvRun{out: out, in: in, w: w, b: b,
		inC: inC, inH: inH, inW: inW, outC: outC, outH: outH, outW: outW,
		icg: a.InC / g, ocg: a.OutC / g,
		kh: a.KH, kw: a.KW, sh: a.SH, sw: a.SW, ph: a.PH, pw: a.PW}
	return parallelForCtx(ctx, n*outC, cr.run)
}

// directConvRun carries the per-invocation state of the direct conv kernel
// so the worker body is a method, not an escaping closure (see fusedRun).
type directConvRun struct {
	out, in, w, b          *tensor.Tensor
	inC, inH, inW          int
	outC, outH, outW       int
	icg, ocg               int
	kh, kw, sh, sw, ph, pw int
}

// run computes output planes [lo,hi) over the flattened (batch × channel)
// index. Safe to call concurrently on disjoint ranges.
func (cr *directConvRun) run(lo, hi int) {
	out, in, w, b := cr.out, cr.in, cr.w, cr.b
	inC, inH, inW := cr.inC, cr.inH, cr.inW
	outC, outH, outW := cr.outC, cr.outH, cr.outW
	icg, ocg := cr.icg, cr.ocg
	kh, kw, sh, sw, ph, pw := cr.kh, cr.kw, cr.sh, cr.sw, cr.ph, cr.pw
	for idx := lo; idx < hi; idx++ {
		bIdx := idx / outC
		oc := idx % outC
		grp := oc / ocg
		bias := float32(0)
		if b != nil {
			bias = b.Data[oc]
		}
		wOff := oc * icg * kh * kw
		outOff := (bIdx*outC + oc) * outH * outW
		for oh := 0; oh < outH; oh++ {
			ihBase := oh*sh - ph
			for ow := 0; ow < outW; ow++ {
				iwBase := ow*sw - pw
				acc := bias
				for ic := 0; ic < icg; ic++ {
					gic := grp*icg + ic
					inPlane := (bIdx*inC + gic) * inH * inW
					wPlane := wOff + ic*kh*kw
					for r := 0; r < kh; r++ {
						ih := ihBase + r
						if ih < 0 || ih >= inH {
							continue
						}
						rowIn := inPlane + ih*inW
						rowW := wPlane + r*kw
						for c := 0; c < kw; c++ {
							iw := iwBase + c
							if iw < 0 || iw >= inW {
								continue
							}
							acc += in.Data[rowIn+iw] * w.Data[rowW+c]
						}
					}
				}
				out.Data[outOff+oh*outW+ow] = acc
			}
		}
	}
}

// batchGroup is how many batch samples the direct conv kernel advances in
// lock-step. Four independent accumulators are enough to hide the FMA
// latency chain on current cores without spilling locals to the stack.
const batchGroup = 4

// directConvBatchRun is directConvRun over (sample group × channel) tasks:
// group g covers samples [g·batchGroup, min(g·batchGroup+batchGroup, n)).
// Full groups take the unrolled body; a ragged tail falls back to the
// scalar runner one sample at a time, preserving its exact order.
type directConvBatchRun struct {
	directConvRun
	n int
}

// run computes output planes for group-tasks [lo,hi) over the flattened
// (sample group × channel) index. Safe to call concurrently on disjoint
// ranges.
func (br *directConvBatchRun) run(lo, hi int) {
	out, in, w, b := br.out, br.in, br.w, br.b
	inC, inH, inW := br.inC, br.inH, br.inW
	outC, outH, outW := br.outC, br.outH, br.outW
	icg, ocg := br.icg, br.ocg
	kh, kw, sh, sw, ph, pw := br.kh, br.kw, br.sh, br.sw, br.ph, br.pw
	for idx := lo; idx < hi; idx++ {
		b0 := (idx / outC) * batchGroup
		oc := idx % outC
		if br.n-b0 < batchGroup {
			// Ragged tail group: per-sample scalar path, identical order.
			for bi := b0; bi < br.n; bi++ {
				br.directConvRun.run(bi*outC+oc, bi*outC+oc+1)
			}
			continue
		}
		grp := oc / ocg
		bias := float32(0)
		if b != nil {
			bias = b.Data[oc]
		}
		wOff := oc * icg * kh * kw
		o0 := ((b0+0)*outC + oc) * outH * outW
		o1 := ((b0+1)*outC + oc) * outH * outW
		o2 := ((b0+2)*outC + oc) * outH * outW
		o3 := ((b0+3)*outC + oc) * outH * outW
		// Interior output columns see the full kernel width in bounds; at
		// column stride 1 they form one contiguous run [owLo, owHi) per
		// output row that the vector row-accumulation kernel can process
		// eight outputs at a time.
		owLo, owHi := 0, 0
		if sw == 1 {
			owLo = pw
			owHi = inW - kw + pw + 1
			if owHi > outW {
				owHi = outW
			}
			if owHi <= owLo {
				owLo, owHi = 0, 0
			}
		}
		// Long-row span: with unit strides and outW == inW the plane
		// linearizes — output index q = oh·outW+ow reads x at
		// q + (r-ph)·inW + (c-pw), independent of oh — so ALL vertically
		// interior rows form one dst run for the vector kernel. This is
		// what lets small planes (8×8 and below) reach vector width. The
		// horizontal edge columns inside the run receive wrapped-row
		// garbage; the scalar edge loop below recomputes them from the
		// bias, overwriting, so final bits are unaffected.
		ohLo, ohHi := 0, 0
		if owHi > owLo && sh == 1 && outW == inW {
			ohLo = ph
			ohHi = inH - kh + ph + 1
			if ohHi > outH {
				ohHi = outH
			}
			if ohHi <= ohLo || (ohHi-ohLo-1)*outW+owHi-owLo < 4 {
				ohLo, ohHi = 0, 0
			}
		}
		// The vector kernel has 8- and 4-wide blocks; runs narrower than 4
		// stay on the four-accumulator path, whose shared weight loads beat
		// the kernel's scalar tail.
		rowVec := owHi-owLo >= 4
		if ohHi > ohLo {
			spanLen := (ohHi-ohLo-1)*outW + owHi - owLo
			s0 := o0 + ohLo*outW + owLo
			s1 := o1 + ohLo*outW + owLo
			s2 := o2 + ohLo*outW + owLo
			s3 := o3 + ohLo*outW + owLo
			d0 := out.Data[s0 : s0+spanLen]
			d1 := out.Data[s1 : s1+spanLen]
			d2 := out.Data[s2 : s2+spanLen]
			d3 := out.Data[s3 : s3+spanLen]
			for j := range d0 {
				d0[j] = bias
				d1[j] = bias
				d2[j] = bias
				d3[j] = bias
			}
			xBase := (ohLo-ph)*inW + owLo - pw
			for ic := 0; ic < icg; ic++ {
				gic := grp*icg + ic
				wRows := w.Data[wOff+ic*kh*kw : wOff+(ic+1)*kh*kw]
				p0 := ((b0+0)*inC + gic) * inH * inW
				p1 := ((b0+1)*inC + gic) * inH * inW
				p2 := ((b0+2)*inC + gic) * inH * inW
				p3 := ((b0+3)*inC + gic) * inH * inW
				gemm.ConvRowAccumQuad(d0, d1, d2, d3,
					in.Data[p0+xBase:], in.Data[p1+xBase:],
					in.Data[p2+xBase:], in.Data[p3+xBase:],
					wRows, kh, kw, inW)
			}
		}
		for oh := 0; oh < outH; oh++ {
			ihBase := oh*sh - ph
			// Clip the kernel to the input once per output row/column
			// instead of branching on every tap: the surviving tap sequence
			// is exactly the one the scalar path visits, so accumulation
			// order (and thus bits) is unchanged.
			rLo, rHi := 0, kh
			if ihBase < 0 {
				rLo = -ihBase
			}
			if ihBase+kh > inH {
				rHi = inH - ihBase
			}
			iLo, iHi := outW, outW
			if oh >= ohLo && oh < ohHi {
				// Interior columns of this row were computed by the long
				// span above; only the edges remain.
				iLo, iHi = owLo, owHi
			} else if rowVec && rHi > rLo {
				// Vectorized interior: seed the bias, then accumulate each
				// input channel's surviving rows. Per output element the
				// order is still bias → ic → r → c with one rounding per
				// multiply and per add, so bits match the scalar path.
				iLo, iHi = owLo, owHi
				rowOff := oh * outW
				d0 := out.Data[o0+rowOff+owLo : o0+rowOff+owHi]
				d1 := out.Data[o1+rowOff+owLo : o1+rowOff+owHi]
				d2 := out.Data[o2+rowOff+owLo : o2+rowOff+owHi]
				d3 := out.Data[o3+rowOff+owLo : o3+rowOff+owHi]
				for j := range d0 {
					d0[j] = bias
					d1[j] = bias
					d2[j] = bias
					d3[j] = bias
				}
				rows := rHi - rLo
				xBase := (ihBase+rLo)*inW + owLo - pw
				for ic := 0; ic < icg; ic++ {
					gic := grp*icg + ic
					wRows := w.Data[wOff+ic*kh*kw+rLo*kw : wOff+ic*kh*kw+rHi*kw]
					p0 := ((b0+0)*inC + gic) * inH * inW
					p1 := ((b0+1)*inC + gic) * inH * inW
					p2 := ((b0+2)*inC + gic) * inH * inW
					p3 := ((b0+3)*inC + gic) * inH * inW
					gemm.ConvRowAccumQuad(d0, d1, d2, d3,
						in.Data[p0+xBase:], in.Data[p1+xBase:],
						in.Data[p2+xBase:], in.Data[p3+xBase:],
						wRows, rows, kw, inW)
				}
			}
			for ow := 0; ow < outW; ow++ {
				if ow >= iLo && ow < iHi {
					ow = iHi - 1 // loop increment lands on iHi
					continue
				}
				iwBase := ow*sw - pw
				cLo, cHi := 0, kw
				if iwBase < 0 {
					cLo = -iwBase
				}
				if iwBase+kw > inW {
					cHi = inW - iwBase
				}
				cnt := cHi - cLo
				acc0, acc1, acc2, acc3 := bias, bias, bias, bias
				if cnt > 0 {
					for ic := 0; ic < icg; ic++ {
						gic := grp*icg + ic
						p0 := ((b0+0)*inC+gic)*inH*inW + iwBase + cLo
						p1 := ((b0+1)*inC+gic)*inH*inW + iwBase + cLo
						p2 := ((b0+2)*inC+gic)*inH*inW + iwBase + cLo
						p3 := ((b0+3)*inC+gic)*inH*inW + iwBase + cLo
						wPlane := wOff + ic*kh*kw + cLo
						for r := rLo; r < rHi; r++ {
							row := (ihBase + r) * inW
							wr := w.Data[wPlane+r*kw:][:cnt]
							x0 := in.Data[p0+row:][:cnt]
							x1 := in.Data[p1+row:][:cnt]
							x2 := in.Data[p2+row:][:cnt]
							x3 := in.Data[p3+row:][:cnt]
							for c, v := range wr {
								acc0 += x0[c] * v
								acc1 += x1[c] * v
								acc2 += x2[c] * v
								acc3 += x3[c] * v
							}
						}
					}
				}
				po := oh*outW + ow
				out.Data[o0+po] = acc0
				out.Data[o1+po] = acc1
				out.Data[o2+po] = acc2
				out.Data[o3+po] = acc3
			}
		}
	}
}

// Linear computes out = in·Wᵀ + b with in [N,In], w [Out,In], b [Out]
// (nil allowed), out [N,Out]: one GEMM with the weight consumed transposed
// in place (no materialized Wᵀ).
func Linear(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.LinearAttrs) {
	n := in.Dim(0)
	beta := linearBias(out, b, n, a.Out)
	gemm.GemmBT(n, a.Out, a.In, 1, in.Data, a.In, w.Data, a.In, beta, out.Data, a.Out)
}

// LinearCtx is Linear with the cancellation contract the conv kernels
// honor: a context that is already done returns its error before any work
// — in particular before the bias rows are seeded, which the plain path
// used to write even for requests canceled while queued. Linear is a
// single GEMM, so there is no mid-kernel check to make.
func LinearCtx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.LinearAttrs) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	Linear(out, in, w, b, a)
	return nil
}

// LinearPrePackedCtx is LinearCtx with the [Out, In] weight supplied
// pre-packed by gemm.PackBT — the plan-once/run-many form the compiled
// engine uses. Bit-identical to Linear on the same operands.
func LinearPrePackedCtx(ctx context.Context, out, in *tensor.Tensor, pw *gemm.PackedB, b *tensor.Tensor, a *ir.LinearAttrs) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := in.Dim(0)
	beta := linearBias(out, b, n, a.Out)
	gemm.GemmPrePackedBT(n, 1, in.Data, a.In, pw, beta, out.Data, a.Out)
	return nil
}

// linearBias seeds every output row with the bias vector and returns the
// GEMM beta: 1 when seeded, 0 (never read C) without a bias.
func linearBias(out *tensor.Tensor, b *tensor.Tensor, n, width int) float32 {
	if b == nil {
		return 0
	}
	for bi := 0; bi < n; bi++ {
		copy(out.Data[bi*width:(bi+1)*width], b.Data)
	}
	return 1
}
