package ops

import (
	"context"

	"temco/internal/gemm"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// Conv2DIm2col computes the same convolution as Conv2D by lowering to a
// matrix product: the input window patches are unfolded into a column
// matrix ("im2col") and the result is a single GEMM per batch element,
// out[bi] = W[OutC × InC·KH·KW] · col[InC·KH·KW × OH·OW] (+ bias), on the
// blocked micro-kernel in internal/gemm. The column buffer is pooled, so
// steady-state inference does not allocate. Grouped convolutions fall back
// to the direct kernel.
func Conv2DIm2col(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) {
	conv2DIm2colCtx(context.Background(), out, in, w, b, a)
}

// conv2DIm2colCtx is Conv2DIm2col with cancellation checks between batch
// elements (and, via parallelForCtx, between per-worker sub-chunks). On
// cancellation the output is partial and must be discarded.
func conv2DIm2colCtx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) error {
	if g := a.Groups; g > 1 {
		return conv2DCtx(ctx, out, in, w, b, a)
	}
	n := in.Dim(0)
	inC, inH, inW := in.Dim(1), in.Dim(2), in.Dim(3)
	outC, outH, outW := out.Dim(1), out.Dim(2), out.Dim(3)
	rows := inC * a.KH * a.KW
	cols := outH * outW

	if n >= Workers && Workers > 1 {
		// Enough batch elements to keep every worker busy: parallelize over
		// the batch with a serial GEMM per element.
		return parallelForCtx(ctx, n, func(lo, hi int) {
			colPtr := gemm.GetF32(rows * cols)
			for bi := lo; bi < hi; bi++ {
				im2col(*colPtr, in, bi, inC, inH, inW, outH, outW, a)
				cSlab := out.Data[bi*outC*cols : (bi+1)*outC*cols]
				beta := biasFill(cSlab, cols, b)
				gemm.Serial(outC, cols, rows, 1, w.Data, rows, *colPtr, cols, beta, cSlab, cols)
			}
			gemm.PutF32(colPtr)
		})
	}
	// Few batch elements: run them in order and let the GEMM itself fan out.
	colPtr := gemm.GetF32(rows * cols)
	for bi := 0; bi < n; bi++ {
		if err := ctx.Err(); err != nil {
			gemm.PutF32(colPtr)
			return err
		}
		im2col(*colPtr, in, bi, inC, inH, inW, outH, outW, a)
		cSlab := out.Data[bi*outC*cols : (bi+1)*outC*cols]
		beta := biasFill(cSlab, cols, b)
		gemm.Gemm(outC, cols, rows, 1, w.Data, rows, *colPtr, cols, beta, cSlab, cols)
	}
	gemm.PutF32(colPtr)
	return nil
}

// biasFill prepares a [rows × cols] output slab for a beta-accumulating
// GEMM: with a bias it seeds every row with its bias value and returns
// beta=1; without, it returns beta=0 so the GEMM skips reading C entirely.
func biasFill(dst []float32, cols int, b *tensor.Tensor) float32 {
	if b == nil {
		return 0
	}
	for r := 0; r < len(dst)/cols; r++ {
		row := dst[r*cols : (r+1)*cols]
		bv := b.Data[r]
		for i := range row {
			row[i] = bv
		}
	}
	return 1
}

// im2col unfolds one batch element's windows into colBuf laid out
// [inC·KH·KW, outH·outW]; out-of-bounds (padding) positions are zero.
func im2col(colBuf []float32, in *tensor.Tensor, bi, inC, inH, inW, outH, outW int, a *ir.ConvAttrs) {
	cols := outH * outW
	for ic := 0; ic < inC; ic++ {
		plane := (bi*inC + ic) * inH * inW
		for r := 0; r < a.KH; r++ {
			for q := 0; q < a.KW; q++ {
				row := ((ic*a.KH+r)*a.KW + q) * cols
				for oh := 0; oh < outH; oh++ {
					ih := oh*a.SH - a.PH + r
					dst := colBuf[row+oh*outW : row+(oh+1)*outW]
					if ih < 0 || ih >= inH {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					srcRow := plane + ih*inW
					for ow := 0; ow < outW; ow++ {
						iw := ow*a.SW - a.PW + q
						if iw < 0 || iw >= inW {
							dst[ow] = 0
						} else {
							dst[ow] = in.Data[srcRow+iw]
						}
					}
				}
			}
		}
	}
}

// Conv2D1x1 is the pointwise-convolution fast path: a 1×1 kernel with unit
// stride and no padding is exactly out[bi] = W[OutC×InC] · in[bi][InC×H·W],
// one GEMM per batch element with no unfolding at all. This is the shape of
// every lconv/fconv the decomposition emits, so it carries most of the
// decomposed models' FLOPs.
func Conv2D1x1(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) {
	conv2D1x1Ctx(context.Background(), out, in, w, b, a)
}

// conv2D1x1Ctx is Conv2D1x1 with cancellation checks between batch
// elements. On cancellation the output is partial and must be discarded.
func conv2D1x1Ctx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) error {
	n := in.Dim(0)
	inC := in.Dim(1)
	hw := in.Dim(2) * in.Dim(3)
	outC := out.Dim(1)
	if n >= Workers && Workers > 1 {
		return parallelForCtx(ctx, n, func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				cSlab := out.Data[bi*outC*hw : (bi+1)*outC*hw]
				beta := biasFill(cSlab, hw, b)
				gemm.Serial(outC, hw, inC, 1, w.Data, inC, in.Data[bi*inC*hw:(bi+1)*inC*hw], hw, beta, cSlab, hw)
			}
		})
	}
	for bi := 0; bi < n; bi++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cSlab := out.Data[bi*outC*hw : (bi+1)*outC*hw]
		beta := biasFill(cSlab, hw, b)
		gemm.Gemm(outC, hw, inC, 1, w.Data, inC, in.Data[bi*inC*hw:(bi+1)*inC*hw], hw, beta, cSlab, hw)
	}
	return nil
}

// is1x1Pointwise reports whether the conv is a pure channel mixing that
// Conv2D1x1 can handle: 1×1 kernel, unit stride, no padding, no groups.
func is1x1Pointwise(a *ir.ConvAttrs) bool {
	return a.KH == 1 && a.KW == 1 && a.SH == 1 && a.SW == 1 &&
		a.PH == 0 && a.PW == 0 && (a.Groups == 0 || a.Groups == 1)
}

// ConvAuto dispatches to the fastest kernel for the shape. Pointwise 1×1
// convolutions go straight to the per-batch GEMM (measured 143× vs the
// direct loop at N=4, 256→64, 56×56 — see results/kernels.txt) unless the
// GEMM is tiny (outHW·InC < 256), where packing overhead dominates.
// Spatial kernels take the im2col lowering (measured 6.4× at N=4, 64→64,
// 56×56, 3×3) once the patch matrix is big enough to amortize the unfold:
// at least 64 output pixels and 4 input channels, below which the direct
// loop's smaller working set wins. Grouped convs always run direct.
func ConvAuto(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) {
	ConvAutoCtx(context.Background(), out, in, w, b, a)
}

// ConvAutoCtx is ConvAuto with the context threaded into the kernel: long
// convolutions check ctx periodically (between output tiles / batch
// elements) and return ctx.Err() once it is canceled, so a canceled
// request stops mid-node instead of finishing the current conv. On a
// non-nil return the output tensor holds partial garbage and must be
// discarded. A context that cannot be canceled costs nothing.
func ConvAutoCtx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) error {
	g := a.Groups
	if g == 0 {
		g = 1
	}
	outHW := out.Dim(2) * out.Dim(3)
	if is1x1Pointwise(a) && outHW*a.InC >= 256 {
		return conv2D1x1Ctx(ctx, out, in, w, b, a)
	}
	if g == 1 && a.KH*a.KW > 1 && outHW >= 64 && a.InC >= 4 {
		return conv2DIm2colCtx(ctx, out, in, w, b, a)
	}
	return conv2DCtx(ctx, out, in, w, b, a)
}
