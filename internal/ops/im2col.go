package ops

import (
	"sync"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// Conv2DIm2col computes the same convolution as Conv2D by lowering to a
// matrix product: the input window patches are unfolded into a column
// matrix ("im2col") and multiplied by the weight viewed as
// [OutC, InC·KH·KW]. For the larger kernels and channel counts of the
// evaluation models this trades memory for much better locality than the
// direct loop. Grouped convolutions fall back to the direct kernel.
func Conv2DIm2col(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) {
	if g := a.Groups; g > 1 {
		Conv2D(out, in, w, b, a)
		return
	}
	n := in.Dim(0)
	inC, inH, inW := in.Dim(1), in.Dim(2), in.Dim(3)
	outC, outH, outW := out.Dim(1), out.Dim(2), out.Dim(3)
	k := a.KH * a.KW
	rows := inC * k
	cols := outH * outW

	var wg sync.WaitGroup
	sem := make(chan struct{}, Workers)
	for bi := 0; bi < n; bi++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(bi int) {
			defer func() { <-sem; wg.Done() }()
			colBuf := make([]float32, rows*cols)
			im2col(colBuf, in, bi, inC, inH, inW, outH, outW, a)
			// out[bi] = W[outC×rows] · colBuf[rows×cols] (+ bias).
			outBase := bi * outC * cols
			for oc := 0; oc < outC; oc++ {
				dst := out.Data[outBase+oc*cols : outBase+(oc+1)*cols]
				bias := float32(0)
				if b != nil {
					bias = b.Data[oc]
				}
				for i := range dst {
					dst[i] = bias
				}
				wRow := w.Data[oc*rows : (oc+1)*rows]
				for r, wv := range wRow {
					if wv == 0 {
						continue
					}
					src := colBuf[r*cols : (r+1)*cols]
					for i, sv := range src {
						dst[i] += wv * sv
					}
				}
			}
		}(bi)
	}
	wg.Wait()
}

// im2col unfolds one batch element's windows into colBuf laid out
// [inC·KH·KW, outH·outW]; out-of-bounds (padding) positions are zero.
func im2col(colBuf []float32, in *tensor.Tensor, bi, inC, inH, inW, outH, outW int, a *ir.ConvAttrs) {
	cols := outH * outW
	for ic := 0; ic < inC; ic++ {
		plane := (bi*inC + ic) * inH * inW
		for r := 0; r < a.KH; r++ {
			for q := 0; q < a.KW; q++ {
				row := ((ic*a.KH+r)*a.KW + q) * cols
				for oh := 0; oh < outH; oh++ {
					ih := oh*a.SH - a.PH + r
					dst := colBuf[row+oh*outW : row+(oh+1)*outW]
					if ih < 0 || ih >= inH {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					srcRow := plane + ih*inW
					for ow := 0; ow < outW; ow++ {
						iw := ow*a.SW - a.PW + q
						if iw < 0 || iw >= inW {
							dst[ow] = 0
						} else {
							dst[ow] = in.Data[srcRow+iw]
						}
					}
				}
			}
		}
	}
}

// ConvAuto picks between the direct and im2col kernels: the GEMM lowering
// pays off once the patch matrix is reasonably large and the kernel is
// spatial; tiny maps and 1×1 convolutions stay on the direct path.
func ConvAuto(out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) {
	g := a.Groups
	if g == 0 {
		g = 1
	}
	outHW := out.Dim(2) * out.Dim(3)
	if g == 1 && a.KH*a.KW > 1 && outHW >= 64 && a.InC >= 4 {
		Conv2DIm2col(out, in, w, b, a)
		return
	}
	Conv2D(out, in, w, b, a)
}
