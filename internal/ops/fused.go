package ops

import (
	"fmt"
	"math"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// FusedTile is the spatial tile edge (in output pixels) used by the fused
// kernel. It corresponds to the CUDA block tile T in the paper's Listing 1:
// the restored C'-channel values exist only inside a per-worker buffer of
// this granularity, never as a full feature map.
const FusedTile = 8

// actFromKind maps IR activation kinds onto kernel activation codes.
func actFromKind(k ir.Kind) actKind {
	switch k {
	case ir.KindReLU:
		return actReLU
	case ir.KindSiLU:
		return actSiLU
	case ir.KindSigmoid:
		return actSigmoid
	default:
		return actIdentity
	}
}

// Fused executes a lconv→act→[pool]→fconv sequence without materializing
// the restored intermediate tensors (paper §3.2, Listing 1). in is
// [N,InC,H,W] (a reduced tensor), out is [N,OutC,OH,OW] (the next reduced
// tensor). Per output tile, the kernel:
//
//  1. computes the restored C'-channel values for the pre-pool region the
//     tile needs (lconv, a 1×1 channel expansion) into a scratch buffer,
//  2. applies the activation in place,
//  3. pools the region down to the tile (when a pool layer is fused), and
//  4. reduces back to OutC channels (fconv, a 1×1 channel reduction).
func Fused(out, in *tensor.Tensor, a *ir.FusedAttrs) {
	n := in.Dim(0)
	inC, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	outC, outH, outW := out.Dim(1), out.Dim(2), out.Dim(3)
	if inC != a.InC || outC != a.OutC {
		panic(fmt.Sprintf("ops: Fused channel mismatch in %d/%d out %d/%d", inC, a.InC, outC, a.OutC))
	}
	// Unify the pooled and unpooled paths: no pool behaves as a 1×1/1 pool.
	kh, kw, sh, sw, ph, pw := 1, 1, 1, 1, 0, 0
	isMax := false
	hasPool := a.Pool != nil
	if hasPool {
		kh, kw, sh, sw, ph, pw = a.Pool.KH, a.Pool.KW, a.Pool.SH, a.Pool.SW, a.Pool.PH, a.Pool.PW
		isMax = a.PoolKind == ir.KindMaxPool
	}
	act := actFromKind(a.Act)
	area := float32(kh * kw)

	tilesH := (outH + FusedTile - 1) / FusedTile
	tilesW := (outW + FusedTile - 1) / FusedTile
	// Pre-pool region covered by one full tile.
	regH := (FusedTile-1)*sh + kh
	regW := (FusedTile-1)*sw + kw

	tasks := n * tilesH * tilesW
	parallelFor(tasks, func(lo, hi int) {
		// Scratch buffers are per worker chunk: this is the whole point of
		// the fusion — O(MidC·tile) live bytes instead of O(MidC·H·W).
		mid := make([]float32, a.MidC*regH*regW)
		valid := make([]bool, regH*regW)
		pooled := make([]float32, a.MidC*FusedTile*FusedTile)
		for task := lo; task < hi; task++ {
			bIdx := task / (tilesH * tilesW)
			t := task % (tilesH * tilesW)
			th := t / tilesW
			tw := t % tilesW
			oh0 := th * FusedTile
			ow0 := tw * FusedTile
			tileH := min(FusedTile, outH-oh0)
			tileW := min(FusedTile, outW-ow0)
			// Pre-pool region for this tile in restored-map coordinates.
			rh0 := oh0*sh - ph
			rw0 := ow0*sw - pw
			rH := (tileH-1)*sh + kh
			rW := (tileW-1)*sw + kw

			// Step 1+2: lconv + activation over the valid region positions.
			for p := 0; p < rH*rW; p++ {
				ih := rh0 + p/rW
				iw := rw0 + p%rW
				valid[p] = ih >= 0 && ih < h && iw >= 0 && iw < w
			}
			for mc := 0; mc < a.MidC; mc++ {
				lw := a.LW.Data[mc*a.InC : (mc+1)*a.InC]
				bias := float32(0)
				if a.LB != nil {
					bias = a.LB.Data[mc]
				}
				row := mid[mc*rH*rW:]
				for p := 0; p < rH*rW; p++ {
					if !valid[p] {
						row[p] = 0
						continue
					}
					ih := rh0 + p/rW
					iw := rw0 + p%rW
					acc := bias
					inBase := (bIdx*inC)*h*w + ih*w + iw
					for ic := 0; ic < inC; ic++ {
						acc += in.Data[inBase+ic*h*w] * lw[ic]
					}
					row[p] = applyAct(act, acc)
				}
			}

			// Step 3: pool the region down to the tile.
			if hasPool {
				for mc := 0; mc < a.MidC; mc++ {
					src := mid[mc*rH*rW:]
					dst := pooled[mc*FusedTile*FusedTile:]
					for ty := 0; ty < tileH; ty++ {
						for tx := 0; tx < tileW; tx++ {
							var acc float32
							if isMax {
								acc = float32(math.Inf(-1))
							}
							for r := 0; r < kh; r++ {
								py := ty*sh + r
								for q := 0; q < kw; q++ {
									px := tx*sw + q
									p := py*rW + px
									if isMax {
										if !valid[p] {
											continue
										}
										if v := src[p]; v > acc {
											acc = v
										}
									} else {
										// Zero-padded average (padding
										// contributes 0, divisor is full
										// area) — matches AvgPool.
										acc += src[p]
									}
								}
							}
							if !isMax {
								acc /= area
							}
							dst[ty*FusedTile+tx] = acc
						}
					}
				}
			} else {
				// Region is the tile itself; alias via copy per channel.
				for mc := 0; mc < a.MidC; mc++ {
					src := mid[mc*rH*rW:]
					dst := pooled[mc*FusedTile*FusedTile:]
					for ty := 0; ty < tileH; ty++ {
						copy(dst[ty*FusedTile:ty*FusedTile+tileW], src[ty*rW:ty*rW+tileW])
					}
				}
			}

			// Step 4: fconv back down to OutC channels. Tail fusion
			// (FW == nil) emits the restored values directly instead.
			if a.FW == nil {
				for mc := 0; mc < a.MidC; mc++ {
					src := pooled[mc*FusedTile*FusedTile:]
					outPlane := (bIdx*outC + mc) * outH * outW
					for ty := 0; ty < tileH; ty++ {
						copy(out.Data[outPlane+(oh0+ty)*outW+ow0:outPlane+(oh0+ty)*outW+ow0+tileW],
							src[ty*FusedTile:ty*FusedTile+tileW])
					}
				}
				continue
			}
			for oc := 0; oc < outC; oc++ {
				fw := a.FW.Data[oc*a.MidC : (oc+1)*a.MidC]
				bias := float32(0)
				if a.FB != nil {
					bias = a.FB.Data[oc]
				}
				outPlane := (bIdx*outC + oc) * outH * outW
				for ty := 0; ty < tileH; ty++ {
					outRow := outPlane + (oh0+ty)*outW + ow0
					for tx := 0; tx < tileW; tx++ {
						acc := bias
						p := ty*FusedTile + tx
						for mc := 0; mc < a.MidC; mc++ {
							acc += pooled[mc*FusedTile*FusedTile+p] * fw[mc]
						}
						out.Data[outRow+tx] = acc
					}
				}
			}
		}
	})
}

// FusedWorkspaceBytes returns the total scratch footprint of one Fused
// invocation: per-worker tile buffers times the worker count. The memory
// planner charges this (small, constant in H·W) amount instead of the two
// full-size intermediates the unfused sequence allocates.
func FusedWorkspaceBytes(a *ir.FusedAttrs) int64 {
	kh, kw, sh, sw := 1, 1, 1, 1
	if a.Pool != nil {
		kh, kw, sh, sw = a.Pool.KH, a.Pool.KW, a.Pool.SH, a.Pool.SW
	}
	regH := (FusedTile-1)*sh + kh
	regW := (FusedTile-1)*sw + kw
	perWorker := int64(a.MidC*regH*regW)*4 + int64(regH*regW) + int64(a.MidC*FusedTile*FusedTile)*4
	return perWorker * int64(Workers)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
