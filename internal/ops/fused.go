package ops

import (
	"context"
	"fmt"
	"math"

	"temco/internal/gemm"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// FusedTile is the spatial tile edge (in output pixels) used by the fused
// kernel. It corresponds to the CUDA block tile T in the paper's Listing 1:
// the restored C'-channel values exist only inside a per-worker buffer of
// this granularity, never as a full feature map.
const FusedTile = 8

// actFromKind maps IR activation kinds onto kernel activation codes.
func actFromKind(k ir.Kind) actKind {
	switch k {
	case ir.KindReLU:
		return actReLU
	case ir.KindSiLU:
		return actSiLU
	case ir.KindSigmoid:
		return actSigmoid
	default:
		return actIdentity
	}
}

// fusedScratchLens reports the per-worker scratch buffer lengths the fused
// kernel borrows from the workspace arena. FusedWorkspaceBytes charges
// exactly these sizes, and TestFusedWorkspaceMatchesScratch pins the two
// together.
//
//	offs   int32  gather offsets into the input plane (-1 = padding)
//	valid  bool   per-position padding mask
//	xbuf   f32    packed input region [InC × regP] for the lconv GEMM
//	mid    f32    restored region [MidC × regP]
//	pooled f32    pooled tile [MidC × T²] (pool layers only)
//	ftile  f32    fconv output tile [OutC × T²] (zero for tail fusion)
func fusedScratchLens(a *ir.FusedAttrs) (offs, valid, xbuf, mid, pooled, ftile int) {
	kh, kw, sh, sw := 1, 1, 1, 1
	if a.Pool != nil {
		kh, kw, sh, sw = a.Pool.KH, a.Pool.KW, a.Pool.SH, a.Pool.SW
	}
	regP := ((FusedTile-1)*sh + kh) * ((FusedTile-1)*sw + kw)
	offs = regP
	valid = regP
	xbuf = a.InC * regP
	mid = a.MidC * regP
	if a.Pool != nil {
		pooled = a.MidC * FusedTile * FusedTile
	}
	if a.FW != nil {
		ftile = a.OutC * FusedTile * FusedTile
	}
	return
}

// Fused executes a lconv→act→[pool]→fconv sequence without materializing
// the restored intermediate tensors (paper §3.2, Listing 1). in is
// [N,InC,H,W] (a reduced tensor), out is [N,OutC,OH,OW] (the next reduced
// tensor). Per output tile, the kernel:
//
//  1. gathers the pre-pool input region the tile needs into a packed
//     buffer and expands it to C' channels with one GEMM (lconv, a 1×1
//     channel expansion) on the blocked micro-kernel,
//  2. applies the activation in place (padding positions forced to zero),
//  3. pools the region down to the tile (when a pool layer is fused), and
//  4. reduces back to OutC channels with a second GEMM (fconv).
//
// All scratch comes from the pooled workspace arena: steady-state calls
// allocate nothing.
func Fused(out, in *tensor.Tensor, a *ir.FusedAttrs) {
	FusedCtx(context.Background(), out, in, a)
}

// FusedCtx is Fused with the context threaded into the tile loop: workers
// re-check ctx every few tiles and abandon the rest of the kernel once it
// is canceled, returning ctx.Err(). The output is then partially written
// and must be discarded. A context that cannot be canceled takes the exact
// pre-existing path and costs nothing.
func FusedCtx(ctx context.Context, out, in *tensor.Tensor, a *ir.FusedAttrs) error {
	return fusedPlannedCtx(ctx, out, in, a, nil)
}

// FusedPlannedCtx is FusedCtx with the lconv/fconv weights supplied
// pre-packed by PlanFused. Bit-identical to FusedCtx on the same operands.
func FusedPlannedCtx(ctx context.Context, out, in *tensor.Tensor, a *ir.FusedAttrs, p *FusedPlan) error {
	return fusedPlannedCtx(ctx, out, in, a, p)
}

func fusedPlannedCtx(ctx context.Context, out, in *tensor.Tensor, a *ir.FusedAttrs, plan *FusedPlan) error {
	n := in.Dim(0)
	inC, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	outC, outH, outW := out.Dim(1), out.Dim(2), out.Dim(3)
	if inC != a.InC || outC != a.OutC {
		panic(fmt.Sprintf("ops: Fused channel mismatch in %d/%d out %d/%d", inC, a.InC, outC, a.OutC))
	}
	// Unify the pooled and unpooled paths: no pool behaves as a 1×1/1 pool.
	kh, kw, sh, sw, ph, pw := 1, 1, 1, 1, 0, 0
	isMax := false
	hasPool := a.Pool != nil
	if hasPool {
		kh, kw, sh, sw, ph, pw = a.Pool.KH, a.Pool.KW, a.Pool.SH, a.Pool.SW, a.Pool.PH, a.Pool.PW
		isMax = a.PoolKind == ir.KindMaxPool
	}
	act := actFromKind(a.Act)
	area := float32(kh * kw)

	tilesH := (outH + FusedTile - 1) / FusedTile
	tilesW := (outW + FusedTile - 1) / FusedTile
	offsLen, validLen, xbufLen, midLen, pooledLen, ftileLen := fusedScratchLens(a)

	tasks := n * tilesH * tilesW
	if ctx.Done() == nil && (Workers <= 1 || tasks <= 1) {
		// Serial fast path: constructing fr here (not shared with the
		// parallel branch) keeps it on the stack, so steady-state inference
		// allocates nothing.
		fr := fusedRun{out: out, in: in, a: a, plan: plan,
			inC: inC, h: h, w: w, outC: outC, outH: outH, outW: outW,
			kh: kh, kw: kw, sh: sh, sw: sw, ph: ph, pw: pw,
			isMax: isMax, hasPool: hasPool, act: act, area: area,
			tilesH: tilesH, tilesW: tilesW,
			offsLen: offsLen, validLen: validLen, xbufLen: xbufLen,
			midLen: midLen, pooledLen: pooledLen, ftileLen: ftileLen}
		fr.run(0, tasks)
		return nil
	}
	fr := fusedRun{out: out, in: in, a: a, plan: plan,
		inC: inC, h: h, w: w, outC: outC, outH: outH, outW: outW,
		kh: kh, kw: kw, sh: sh, sw: sw, ph: ph, pw: pw,
		isMax: isMax, hasPool: hasPool, act: act, area: area,
		tilesH: tilesH, tilesW: tilesW,
		offsLen: offsLen, validLen: validLen, xbufLen: xbufLen,
		midLen: midLen, pooledLen: pooledLen, ftileLen: ftileLen}
	return parallelForCtx(ctx, tasks, fr.run)
}

// fusedRun carries the per-invocation state of Fused so the worker body can
// be a method rather than a closure: closures handed to parallelFor escape
// to the heap, while the serial path above calls run directly on a
// stack-resident value.
type fusedRun struct {
	out, in                     *tensor.Tensor
	a                           *ir.FusedAttrs
	plan                        *FusedPlan // pre-packed weights; nil packs per call
	inC, h, w                   int
	outC, outH, outW            int
	kh, kw, sh, sw, ph, pw      int
	isMax, hasPool              bool
	act                         actKind
	area                        float32
	tilesH, tilesW              int
	offsLen, validLen, xbufLen  int
	midLen, pooledLen, ftileLen int
}

// run processes output tiles [lo,hi). It is safe to call concurrently on
// disjoint ranges: every tile owns its output pixels.
func (fr *fusedRun) run(lo, hi int) {
	out, in, a := fr.out, fr.in, fr.a
	inC, h, w := fr.inC, fr.h, fr.w
	outC, outH, outW := fr.outC, fr.outH, fr.outW
	kh, kw, sh, sw, ph, pw := fr.kh, fr.kw, fr.sh, fr.sw, fr.ph, fr.pw
	isMax, hasPool, act, area := fr.isMax, fr.hasPool, fr.act, fr.area
	tilesH, tilesW := fr.tilesH, fr.tilesW

	// Scratch is per worker chunk and pooled: this is the whole point of
	// the fusion — O(MidC·tile) live bytes instead of O(MidC·H·W).
	offsPtr := gemm.GetI32(fr.offsLen)
	validPtr := gemm.GetBool(fr.validLen)
	xbufPtr := gemm.GetF32(fr.xbufLen)
	midPtr := gemm.GetF32(fr.midLen)
	offs, valid, xbuf, mid := *offsPtr, *validPtr, *xbufPtr, *midPtr
	var pooled, ftile []float32
	var pooledPtr, ftilePtr *[]float32
	if hasPool {
		pooledPtr = gemm.GetF32(fr.pooledLen)
		pooled = *pooledPtr
	}
	if a.FW != nil {
		ftilePtr = gemm.GetF32(fr.ftileLen)
		ftile = *ftilePtr
	}
	for task := lo; task < hi; task++ {
		bIdx := task / (tilesH * tilesW)
		t := task % (tilesH * tilesW)
		th := t / tilesW
		tw := t % tilesW
		oh0 := th * FusedTile
		ow0 := tw * FusedTile
		tileH := min(FusedTile, outH-oh0)
		tileW := min(FusedTile, outW-ow0)
		// Pre-pool region for this tile in restored-map coordinates.
		rh0 := oh0*sh - ph
		rw0 := ow0*sw - pw
		rH := (tileH-1)*sh + kh
		rW := (tileW-1)*sw + kw
		rP := rH * rW

		// Step 1: gather the input region (zeros at padding), then one
		// GEMM expands it to MidC channels; activation follows in place.
		// Interior tiles — the common case — have a fully in-bounds region
		// and pack with row copies; only border tiles walk the offset table.
		allValid := rh0 >= 0 && rw0 >= 0 && rh0+rH <= h && rw0+rW <= w
		if allValid {
			// The generic pool below still consults the mask (scratch is
			// reused across tasks, so it must not go stale even when every
			// position is in bounds).
			for p := range valid[:rP] {
				valid[p] = true
			}
			for ic := 0; ic < inC; ic++ {
				base := (bIdx*inC+ic)*h*w + rh0*w + rw0
				row := xbuf[ic*rP : (ic+1)*rP]
				for rr := 0; rr < rH; rr++ {
					copy(row[rr*rW:rr*rW+rW], in.Data[base+rr*w:base+rr*w+rW])
				}
			}
		} else {
			for p := 0; p < rP; p++ {
				ih := rh0 + p/rW
				iw := rw0 + p%rW
				if ih >= 0 && ih < h && iw >= 0 && iw < w {
					valid[p] = true
					offs[p] = int32(ih*w + iw)
				} else {
					valid[p] = false
					offs[p] = -1
				}
			}
			for ic := 0; ic < inC; ic++ {
				base := (bIdx*inC + ic) * h * w
				row := xbuf[ic*rP : (ic+1)*rP]
				for p, o := range offs[:rP] {
					if o >= 0 {
						row[p] = in.Data[base+int(o)]
					} else {
						row[p] = 0
					}
				}
			}
		}
		beta := float32(0)
		if a.LB != nil {
			for mc := 0; mc < a.MidC; mc++ {
				row := mid[mc*rP : (mc+1)*rP]
				bv := a.LB.Data[mc]
				for i := range row {
					row[i] = bv
				}
			}
			beta = 1
		}
		if fr.plan != nil {
			gemm.SerialPackedA(rP, 1, fr.plan.lw, xbuf[:inC*rP], rP, beta, mid[:a.MidC*rP], rP)
		} else {
			gemm.Serial(a.MidC, rP, inC, 1, a.LW.Data, inC, xbuf[:inC*rP], rP, beta, mid[:a.MidC*rP], rP)
		}

		// Step 2: activation over valid positions, zero at padding (a
		// padded position must not contribute applyAct(bias) downstream).
		// Two cases skip the padding mask entirely: interior tiles have no
		// padded positions, and max pooling never reads them (its own mask
		// check below skips invalid positions, so their values are dead).
		// The specialized loops apply the same scalar math in the same
		// order as applyAct, so outputs are bit-identical on every path.
		// When the unrolled max-pool fast path below can absorb the
		// activation (ReLU or identity), the whole pass is skipped: ReLU is
		// itself a max, so clamping at the single read site computes the
		// same window maximum as clamping every element first.
		fastPool := hasPool && isMax && allValid && kh == 2 && kw == 2 && sh == 2 && sw == 2
		actInPool := fastPool && (act == actReLU || act == actIdentity)
		if actInPool {
			// Activation handled inside the pool read below.
		} else if allValid || (hasPool && isMax) {
			switch act {
			case actIdentity:
				// Nothing to apply.
			case actReLU:
				for mc := 0; mc < a.MidC; mc++ {
					gemm.ReLU(mid[mc*rP : (mc+1)*rP])
				}
			default:
				for mc := 0; mc < a.MidC; mc++ {
					row := mid[mc*rP : (mc+1)*rP]
					for p, v := range row {
						row[p] = applyAct(act, v)
					}
				}
			}
		} else {
			for mc := 0; mc < a.MidC; mc++ {
				row := mid[mc*rP : (mc+1)*rP]
				for p := 0; p < rP; p++ {
					if valid[p] {
						row[p] = applyAct(act, row[p])
					} else {
						row[p] = 0
					}
				}
			}
		}

		// Step 3: pool the region down to the tile. fsrc is what fconv
		// consumes: the pooled tile (row stride T²... laid out T per row)
		// or, with no pool, the region itself (identical coordinates).
		fsrc := mid
		fCols := rP
		fld := rP
		rowStride := rW
		if fastPool {
			// Unrolled fast path for the ubiquitous 2×2/2 max pool on an
			// interior tile: the four candidates are compared in the exact
			// row-major order of the generic loop below, starting from the
			// same -Inf identity, so the result is bit-identical. With
			// actInPool the window maximum of the raw values is clamped
			// once at the end — ReLU commutes with max exactly.
			clamp := actInPool && act == actReLU
			for mc := 0; mc < a.MidC; mc++ {
				src := mid[mc*rP:]
				dst := pooled[mc*FusedTile*FusedTile:]
				for ty := 0; ty < tileH; ty++ {
					srow := src[ty*2*rW:]
					gemm.MaxPool2x2Row(dst[ty*FusedTile:ty*FusedTile+tileW],
						srow[:rW], srow[rW:2*rW], clamp)
				}
			}
			fsrc = pooled
			fCols = tileH * FusedTile
			fld = FusedTile * FusedTile
			rowStride = FusedTile
		} else if hasPool {
			for mc := 0; mc < a.MidC; mc++ {
				src := mid[mc*rP:]
				dst := pooled[mc*FusedTile*FusedTile:]
				for ty := 0; ty < tileH; ty++ {
					for tx := 0; tx < tileW; tx++ {
						var acc float32
						if isMax {
							acc = float32(math.Inf(-1))
						}
						for r := 0; r < kh; r++ {
							py := ty*sh + r
							for q := 0; q < kw; q++ {
								px := tx*sw + q
								p := py*rW + px
								if isMax {
									if !valid[p] {
										continue
									}
									if v := src[p]; v > acc {
										acc = v
									}
								} else {
									// Zero-padded average (padding
									// contributes 0, divisor is full
									// area) — matches AvgPool.
									acc += src[p]
								}
							}
						}
						if !isMax {
							acc /= area
						}
						dst[ty*FusedTile+tx] = acc
					}
				}
			}
			fsrc = pooled
			fCols = tileH * FusedTile
			fld = FusedTile * FusedTile
			rowStride = FusedTile
		}

		// Step 4: fconv back down to OutC channels via a second GEMM.
		// Tail fusion (FW == nil) emits the restored values directly.
		if a.FW == nil {
			for mc := 0; mc < a.MidC; mc++ {
				src := fsrc[mc*fld:]
				outPlane := (bIdx*outC + mc) * outH * outW
				for ty := 0; ty < tileH; ty++ {
					copy(out.Data[outPlane+(oh0+ty)*outW+ow0:outPlane+(oh0+ty)*outW+ow0+tileW],
						src[ty*rowStride:ty*rowStride+tileW])
				}
			}
			continue
		}
		fbeta := float32(0)
		if a.FB != nil {
			for oc := 0; oc < outC; oc++ {
				row := ftile[oc*fld : oc*fld+fCols]
				bv := a.FB.Data[oc]
				for i := range row {
					row[i] = bv
				}
			}
			fbeta = 1
		}
		if fr.plan != nil {
			gemm.SerialPackedA(fCols, 1, fr.plan.fw, fsrc[:(a.MidC-1)*fld+fCols], fld, fbeta, ftile[:(outC-1)*fld+fCols], fld)
		} else {
			gemm.Serial(outC, fCols, a.MidC, 1, a.FW.Data, a.MidC, fsrc[:(a.MidC-1)*fld+fCols], fld, fbeta, ftile[:(outC-1)*fld+fCols], fld)
		}
		for oc := 0; oc < outC; oc++ {
			src := ftile[oc*fld:]
			outPlane := (bIdx*outC + oc) * outH * outW
			for ty := 0; ty < tileH; ty++ {
				copy(out.Data[outPlane+(oh0+ty)*outW+ow0:outPlane+(oh0+ty)*outW+ow0+tileW],
					src[ty*rowStride:ty*rowStride+tileW])
			}
		}
	}
	gemm.PutI32(offsPtr)
	gemm.PutBool(validPtr)
	gemm.PutF32(xbufPtr)
	gemm.PutF32(midPtr)
	if pooledPtr != nil {
		gemm.PutF32(pooledPtr)
	}
	if ftilePtr != nil {
		gemm.PutF32(ftilePtr)
	}
}

// FusedWorkspaceBytes returns the total scratch footprint of one Fused
// invocation: the per-worker arena buffers (fusedScratchLens) times the
// worker count. The memory planner charges this (small, constant in H·W)
// amount instead of the two full-size intermediates the unfused sequence
// allocates.
func FusedWorkspaceBytes(a *ir.FusedAttrs) int64 {
	offs, valid, xbuf, mid, pooled, ftile := fusedScratchLens(a)
	perWorker := int64(offs)*4 + int64(valid) + int64(xbuf+mid+pooled+ftile)*4
	return perWorker * int64(Workers)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
