// Package ops implements the CPU kernels behind every IR operator,
// including the TeMCO fused lconv→act→[pool]→fconv kernel (the CPU
// equivalent of the paper's CUDA Listing 1). Kernels are parallelized
// across goroutines; all tensors are NCHW float32.
package ops

import (
	"os"
	"runtime"
	"strconv"
	"sync"

	"temco/internal/gemm"
)

// Workers is the degree of parallelism used by the kernels. It defaults to
// GOMAXPROCS and can be lowered for deterministic single-threaded runs.
// Prefer SetWorkers over assigning directly: it validates the value and
// keeps the GEMM backbone's fan-out in lock-step.
var Workers = runtime.GOMAXPROCS(0)

// SetWorkers sets the kernel parallelism for both this package and the
// internal/gemm backbone, clamped to at least 1, and returns the value
// applied. Every kernel is deterministic across worker counts: serial and
// parallel runs produce bit-identical outputs.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	Workers = n
	gemm.SetWorkers(n)
	return n
}

// WorkersFromEnv applies the TEMCO_WORKERS environment override (used by
// the CLIs): a positive integer sets the worker count, anything else is
// ignored. It returns the worker count in effect afterwards.
func WorkersFromEnv() int {
	if s := os.Getenv("TEMCO_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return SetWorkers(v)
		}
	}
	return Workers
}

// parallelFor splits [0,n) into contiguous chunks and runs fn on each chunk
// concurrently. fn must not retain the range beyond the call.
func parallelFor(n int, fn func(lo, hi int)) {
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if n <= 0 {
		return
	}
	if w == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
