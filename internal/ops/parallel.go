// Package ops implements the CPU kernels behind every IR operator,
// including the TeMCO fused lconv→act→[pool]→fconv kernel (the CPU
// equivalent of the paper's CUDA Listing 1). Kernels are parallelized
// across goroutines; all tensors are NCHW float32.
package ops

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"temco/internal/gemm"
	"temco/internal/guard"
)

// Workers is the degree of parallelism used by the kernels. It defaults to
// GOMAXPROCS and can be lowered for deterministic single-threaded runs.
// Prefer SetWorkers over assigning directly: it validates the value and
// keeps the GEMM backbone's fan-out in lock-step.
var Workers = runtime.GOMAXPROCS(0)

// SetWorkers sets the kernel parallelism for both this package and the
// internal/gemm backbone, clamped to at least 1, and returns the value
// applied. Every kernel is deterministic across worker counts: serial and
// parallel runs produce bit-identical outputs.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	Workers = n
	gemm.SetWorkers(n)
	return n
}

// WorkersFromEnv applies the TEMCO_WORKERS environment override (used by
// the CLIs). Unset or empty leaves the worker count unchanged. A value that
// is not a positive integer is rejected with an error wrapping
// guard.ErrInvalidModel — a typo in a deployment manifest must fail loudly,
// not silently fall back to GOMAXPROCS. It returns the worker count in
// effect afterwards.
func WorkersFromEnv() (int, error) {
	s := os.Getenv("TEMCO_WORKERS")
	if s == "" {
		return Workers, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		return Workers, guard.Errorf(guard.ErrInvalidModel, "env",
			"TEMCO_WORKERS=%q: want a positive integer", s)
	}
	return SetWorkers(v), nil
}

// cancelStride is how many tasks a worker runs between cancellation checks
// in parallelForCtx. Tasks are coarse units (an output tile, a batch
// element, a (batch, channel) plane), so even a modest stride bounds the
// latency of honoring a canceled context to a few tiles' worth of work.
const cancelStride = 32

// parallelFor splits [0,n) into contiguous chunks and runs fn on each chunk
// concurrently. fn must not retain the range beyond the call.
//
// A panic inside a worker is captured and re-raised on the calling
// goroutine after all workers finish, so kernel panics behave identically
// in serial and parallel runs and guard.Safe wrappers upstream can recover
// them. Without this, a panic in a spawned worker would kill the process no
// matter how many recover()s sit above the kernel call.
func parallelFor(n int, fn func(lo, hi int)) {
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if n <= 0 {
		return
	}
	if w == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	var panicked atomic.Pointer[panicValue]
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer capturePanic(&panicked)
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	rethrow(&panicked)
}

// parallelForCtx is parallelFor with a periodic cancellation check: each
// worker re-checks ctx every cancelStride tasks and abandons its remaining
// range once the context is done, so a canceled request stops mid-node
// instead of finishing the current conv. It returns ctx.Err() when the run
// was cut short (the output tensor is then partially written and must be
// discarded) and nil when every task ran.
//
// A context that can never be canceled (ctx.Done() == nil, e.g.
// context.Background()) takes the plain parallelFor path and pays nothing.
func parallelForCtx(ctx context.Context, n int, fn func(lo, hi int)) error {
	if ctx.Done() == nil {
		parallelFor(n, fn)
		return nil
	}
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	var stop atomic.Bool
	body := func(lo, hi int) {
		for s := lo; s < hi; s += cancelStride {
			if stop.Load() {
				return
			}
			if ctx.Err() != nil {
				stop.Store(true)
				return
			}
			e := s + cancelStride
			if e > hi {
				e = hi
			}
			fn(s, e)
		}
	}
	if w == 1 {
		body(0, n)
		return ctx.Err()
	}
	var wg sync.WaitGroup
	var panicked atomic.Pointer[panicValue]
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer capturePanic(&panicked)
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	rethrow(&panicked)
	return ctx.Err()
}

// panicValue carries a worker goroutine's panic back to the caller.
type panicValue struct{ v any }

// capturePanic records a recovered panic into p (first writer wins). It
// must be deferred directly so recover() sees the worker's panic.
func capturePanic(p *atomic.Pointer[panicValue]) {
	if r := recover(); r != nil {
		p.CompareAndSwap(nil, &panicValue{v: r})
	}
}

// rethrow re-raises a captured worker panic on the calling goroutine.
func rethrow(p *atomic.Pointer[panicValue]) {
	if pv := p.Load(); pv != nil {
		panic(pv.v)
	}
}
