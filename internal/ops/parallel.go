// Package ops implements the CPU kernels behind every IR operator,
// including the TeMCO fused lconv→act→[pool]→fconv kernel (the CPU
// equivalent of the paper's CUDA Listing 1). Kernels are parallelized
// across goroutines; all tensors are NCHW float32.
package ops

import (
	"runtime"
	"sync"
)

// Workers is the degree of parallelism used by the kernels. It defaults to
// GOMAXPROCS and can be lowered for deterministic single-threaded runs.
var Workers = runtime.GOMAXPROCS(0)

// parallelFor splits [0,n) into contiguous chunks and runs fn on each chunk
// concurrently. fn must not retain the range beyond the call.
func parallelFor(n int, fn func(lo, hi int)) {
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if n <= 0 {
		return
	}
	if w == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
