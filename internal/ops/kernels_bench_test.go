package ops

import (
	"testing"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// BenchmarkKernels tracks every matmul-shaped kernel over representative
// model shapes so kernel regressions show up directly, independent of the
// figure-level end-to-end benchmarks. The conv shape is the ResNet-scale
// block from the acceptance criteria (N=4, 64→64 channels, 56×56, 3×3);
// results/kernels.txt records the baseline-vs-gemm comparison.
func BenchmarkKernels(b *testing.B) {
	r := tensor.NewRNG(11)

	convAttrs := &ir.ConvAttrs{InC: 64, OutC: 64, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
	convIn := tensor.New(4, 64, 56, 56)
	convIn.FillNormal(r, 0, 1)
	convW := tensor.New(64, 64, 3, 3)
	convW.FillNormal(r, 0, 0.1)
	convB := tensor.New(64)
	convOut := tensor.New(4, 64, 56, 56)

	b.Run("conv3x3/direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Conv2D(convOut, convIn, convW, convB, convAttrs)
		}
	})
	b.Run("conv3x3/im2col", func(b *testing.B) {
		Conv2DIm2col(convOut, convIn, convW, convB, convAttrs) // warm the workspace pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Conv2DIm2col(convOut, convIn, convW, convB, convAttrs)
		}
	})

	oneAttrs := &ir.ConvAttrs{InC: 256, OutC: 64, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
	oneIn := tensor.New(4, 256, 56, 56)
	oneIn.FillNormal(r, 0, 1)
	oneW := tensor.New(64, 256, 1, 1)
	oneW.FillNormal(r, 0, 0.1)
	oneB := tensor.New(64)
	oneOut := tensor.New(4, 64, 56, 56)
	b.Run("conv1x1/auto", func(b *testing.B) {
		ConvAuto(oneOut, oneIn, oneW, oneB, oneAttrs) // warm the workspace pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ConvAuto(oneOut, oneIn, oneW, oneB, oneAttrs)
		}
	})

	linAttrs := &ir.LinearAttrs{In: 512, Out: 512}
	linIn := tensor.New(32, 512)
	linIn.FillNormal(r, 0, 1)
	linW := tensor.New(512, 512)
	linW.FillNormal(r, 0, 0.1)
	linB := tensor.New(512)
	linOut := tensor.New(32, 512)
	b.Run("linear/32x512x512", func(b *testing.B) {
		Linear(linOut, linIn, linW, linB, linAttrs) // warm the workspace pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Linear(linOut, linIn, linW, linB, linAttrs)
		}
	})

	fAttrs := &ir.FusedAttrs{
		InC: 6, MidC: 64, OutC: 6, Act: ir.KindReLU,
		Pool: &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2}, PoolKind: ir.KindMaxPool,
		LW: tensor.New(64, 6, 1, 1), LB: tensor.New(64),
		FW: tensor.New(6, 64, 1, 1), FB: tensor.New(6),
	}
	fAttrs.LW.FillNormal(r, 0, 1)
	fAttrs.FW.FillNormal(r, 0, 1)
	fIn := tensor.New(4, 6, 64, 64)
	fIn.FillNormal(r, 0, 1)
	fOut := tensor.New(4, 6, 32, 32)
	b.Run("fused/lconv-relu-pool-fconv", func(b *testing.B) {
		Fused(fOut, fIn, fAttrs) // warm the workspace pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Fused(fOut, fIn, fAttrs)
		}
	})
}
