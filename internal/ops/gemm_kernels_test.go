package ops

import (
	"testing"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// TestKernelsDeterministicAcrossWorkers pins the determinism contract of the
// GEMM-backed kernels: because the backbone splits work along NR-aligned
// column strips, serial and parallel runs accumulate every output element in
// the same order and must agree bit for bit, for any worker count.
func TestKernelsDeterministicAcrossWorkers(t *testing.T) {
	r := tensor.NewRNG(11)
	ca := &ir.ConvAttrs{InC: 5, OutC: 7, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
	in := randT(r, 3, 5, 13, 13)
	cw := randT(r, 7, 5, 3, 3)
	cb := randT(r, 7)
	pa := &ir.ConvAttrs{InC: 6, OutC: 9, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
	pin := randT(r, 3, 6, 13, 13)
	pw := randT(r, 9, 6, 1, 1)
	la := &ir.LinearAttrs{In: 33, Out: 17}
	lin := randT(r, 5, 33)
	lw := randT(r, 17, 33)
	lb := randT(r, 17)
	fa := &ir.FusedAttrs{InC: 5, MidC: 24, OutC: 5, Act: ir.KindReLU,
		PoolKind: ir.KindMaxPool,
		Pool:     &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2},
		LW:       randT(r, 24, 5, 1, 1), LB: randT(r, 24),
		FW: randT(r, 5, 24, 1, 1), FB: randT(r, 5)}

	type result struct{ conv, pw1, lout, fout *tensor.Tensor }
	runAll := func() result {
		res := result{
			conv: tensor.New(3, 7, 13, 13),
			pw1:  tensor.New(3, 9, 13, 13),
			lout: tensor.New(5, 17),
			fout: tensor.New(3, 5, 6, 6),
		}
		Conv2DIm2col(res.conv, in, cw, cb, ca)
		Conv2D1x1(res.pw1, pin, pw, nil, pa)
		Linear(res.lout, lin, lw, lb, la)
		Fused(res.fout, in, fa)
		return res
	}

	old := Workers
	defer SetWorkers(old)
	SetWorkers(1)
	ref := runAll()
	for _, w := range []int{2, 3, 8} {
		SetWorkers(w)
		got := runAll()
		if d := tensor.MaxAbsDiff(ref.conv, got.conv); d != 0 {
			t.Errorf("workers=%d: im2col conv differs from serial by %v", w, d)
		}
		if d := tensor.MaxAbsDiff(ref.pw1, got.pw1); d != 0 {
			t.Errorf("workers=%d: 1x1 conv differs from serial by %v", w, d)
		}
		if d := tensor.MaxAbsDiff(ref.lout, got.lout); d != 0 {
			t.Errorf("workers=%d: linear differs from serial by %v", w, d)
		}
		if d := tensor.MaxAbsDiff(ref.fout, got.fout); d != 0 {
			t.Errorf("workers=%d: fused differs from serial by %v", w, d)
		}
	}
}

// TestConv2D1x1MatchesDirect validates the pointwise fast path against the
// direct kernel, with and without bias, including multi-batch inputs.
func TestConv2D1x1MatchesDirect(t *testing.T) {
	r := tensor.NewRNG(12)
	for _, tc := range []struct {
		n, inC, outC, h, w int
		bias               bool
	}{
		{1, 3, 8, 7, 7, true},
		{4, 16, 4, 9, 11, false},
		{2, 1, 1, 5, 5, true},
		{3, 32, 48, 8, 8, true},
	} {
		a := &ir.ConvAttrs{InC: tc.inC, OutC: tc.outC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
		in := randT(r, tc.n, tc.inC, tc.h, tc.w)
		w := randT(r, tc.outC, tc.inC, 1, 1)
		var b *tensor.Tensor
		if tc.bias {
			b = randT(r, tc.outC)
		}
		want := tensor.New(tc.n, tc.outC, tc.h, tc.w)
		Conv2D(want, in, w, b, a)
		got := tensor.New(tc.n, tc.outC, tc.h, tc.w)
		Conv2D1x1(got, in, w, b, a)
		if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
			t.Errorf("%+v: 1x1 fast path differs from direct by %v", tc, d)
		}
	}
}

// TestConvAutoDispatch checks that every ConvAuto route computes the same
// values as the direct reference kernel on shapes that exercise each branch.
func TestConvAutoDispatch(t *testing.T) {
	r := tensor.NewRNG(13)
	for _, tc := range []struct {
		name    string
		a       *ir.ConvAttrs
		n, h, w int
	}{
		{"pointwise-large", &ir.ConvAttrs{InC: 16, OutC: 8, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, 2, 14, 14},
		{"pointwise-tiny", &ir.ConvAttrs{InC: 2, OutC: 3, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}, 1, 3, 3},
		{"spatial-im2col", &ir.ConvAttrs{InC: 8, OutC: 8, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}, 2, 12, 12},
		{"spatial-small", &ir.ConvAttrs{InC: 2, OutC: 4, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}, 1, 5, 5},
		{"grouped", &ir.ConvAttrs{InC: 4, OutC: 4, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 2}, 2, 10, 10},
		{"strided-1x1", &ir.ConvAttrs{InC: 8, OutC: 8, KH: 1, KW: 1, SH: 2, SW: 2, Groups: 1}, 1, 14, 14},
	} {
		icg := tc.a.InC
		if g := tc.a.Groups; g > 1 {
			icg = tc.a.InC / g
		}
		in := randT(r, tc.n, tc.a.InC, tc.h, tc.w)
		w := randT(r, tc.a.OutC, icg, tc.a.KH, tc.a.KW)
		b := randT(r, tc.a.OutC)
		outH := (tc.h+2*tc.a.PH-tc.a.KH)/tc.a.SH + 1
		outW := (tc.w+2*tc.a.PW-tc.a.KW)/tc.a.SW + 1
		want := refConv2D(in, w, b, tc.a)
		got := tensor.New(tc.n, tc.a.OutC, outH, outW)
		ConvAuto(got, in, w, b, tc.a)
		if d := tensor.MaxAbsDiff(want, got); d > 1e-4 {
			t.Errorf("%s: ConvAuto differs from reference by %v", tc.name, d)
		}
	}
}

// TestFusedWorkspaceMatchesScratch pins FusedWorkspaceBytes to the buffers
// the kernel actually borrows from the arena (satellite: the planner must
// charge what the kernel uses, not a stale formula).
func TestFusedWorkspaceMatchesScratch(t *testing.T) {
	r := tensor.NewRNG(14)
	cases := []*ir.FusedAttrs{
		// Pool + fconv: all six buffers live.
		{InC: 4, MidC: 32, OutC: 6, Act: ir.KindReLU, PoolKind: ir.KindMaxPool,
			Pool: &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2},
			LW:   randT(r, 32, 4, 1, 1), FW: randT(r, 6, 32, 1, 1)},
		// No pool: pooled buffer must not be charged.
		{InC: 4, MidC: 32, OutC: 6, Act: ir.KindReLU,
			LW: randT(r, 32, 4, 1, 1), FW: randT(r, 6, 32, 1, 1)},
		// Tail fusion (no fconv): ftile must not be charged.
		{InC: 4, MidC: 32, OutC: 32, Act: ir.KindReLU,
			LW: randT(r, 32, 4, 1, 1)},
	}
	for i, a := range cases {
		offs, valid, xbuf, mid, pooled, ftile := fusedScratchLens(a)
		want := (int64(offs)*4 + int64(valid) + int64(xbuf+mid+pooled+ftile)*4) * int64(Workers)
		if got := FusedWorkspaceBytes(a); got != want {
			t.Errorf("case %d: FusedWorkspaceBytes = %d, scratch lens imply %d", i, got, want)
		}
		if a.Pool == nil && pooled != 0 {
			t.Errorf("case %d: pooled scratch charged without a pool layer", i)
		}
		if a.FW == nil && ftile != 0 {
			t.Errorf("case %d: ftile scratch charged without an fconv", i)
		}
	}
}

// TestKernelsZeroAllocSteadyState verifies that after a warm-up call the
// GEMM-backed kernels run entirely out of the pooled workspace arena.
func TestKernelsZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	old := Workers
	defer SetWorkers(old)
	SetWorkers(1)

	r := tensor.NewRNG(15)
	ca := &ir.ConvAttrs{InC: 8, OutC: 8, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
	cin := randT(r, 1, 8, 16, 16)
	cw := randT(r, 8, 8, 3, 3)
	cb := randT(r, 8)
	cout := tensor.New(1, 8, 16, 16)
	fa := &ir.FusedAttrs{InC: 4, MidC: 16, OutC: 4, Act: ir.KindReLU,
		PoolKind: ir.KindMaxPool,
		Pool:     &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2},
		LW:       randT(r, 16, 4, 1, 1), FW: randT(r, 4, 16, 1, 1)}
	fin := randT(r, 1, 4, 16, 16)
	fout := tensor.New(1, 4, 8, 8)
	la := &ir.LinearAttrs{In: 64, Out: 32}
	lin := randT(r, 4, 64)
	lw := randT(r, 32, 64)
	lout := tensor.New(4, 32)

	for name, fn := range map[string]func(){
		"im2col": func() { Conv2DIm2col(cout, cin, cw, cb, ca) },
		"fused":  func() { Fused(fout, fin, fa) },
		"linear": func() { Linear(lout, lin, lw, nil, la) },
	} {
		fn() // warm the workspace pools
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", name, allocs)
		}
	}
}
