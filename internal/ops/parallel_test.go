package ops

import (
	"testing"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// TestKernelsSingleWorker pins the Workers=1 code path: results must be
// identical to the parallel path (the kernels must not depend on the
// split).
func TestKernelsSingleWorker(t *testing.T) {
	r := tensor.NewRNG(3)
	a := &ir.ConvAttrs{InC: 4, OutC: 6, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
	in := randT(r, 2, 4, 9, 9)
	w := randT(r, 6, 4, 3, 3)
	b := randT(r, 6)
	par := tensor.New(2, 6, 9, 9)
	Conv2D(par, in, w, b, a)

	old := Workers
	defer func() { Workers = old }()
	Workers = 1
	ser := tensor.New(2, 6, 9, 9)
	Conv2D(ser, in, w, b, a)
	if d := tensor.MaxAbsDiff(par, ser); d != 0 {
		t.Fatalf("serial and parallel conv differ by %v", d)
	}
	fa := &ir.FusedAttrs{InC: 4, MidC: 16, OutC: 4, Act: ir.KindReLU,
		LW: randT(r, 16, 4, 1, 1), FW: randT(r, 4, 16, 1, 1)}
	out1 := tensor.New(2, 4, 9, 9)
	Fused(out1, in, fa)
	Workers = old
	out2 := tensor.New(2, 4, 9, 9)
	Fused(out2, in, fa)
	if d := tensor.MaxAbsDiff(out1, out2); d != 0 {
		t.Fatalf("serial and parallel fused differ by %v", d)
	}
}

func TestFusedWorkspaceIndependentOfResolution(t *testing.T) {
	a := &ir.FusedAttrs{InC: 8, MidC: 64, OutC: 8, Act: ir.KindReLU,
		LW: tensor.New(64, 8, 1, 1), FW: tensor.New(8, 64, 1, 1)}
	// Workspace formula has no H/W term: the whole point of tiling.
	w1 := FusedWorkspaceBytes(a)
	w2 := FusedWorkspaceBytes(a) // same attrs, any map size
	if w1 != w2 || w1 <= 0 {
		t.Fatalf("workspace bytes unstable: %d vs %d", w1, w2)
	}
}
