package ops

import (
	"math"
	"testing"
	"testing/quick"

	"temco/internal/ir"
	"temco/internal/tensor"
)

// refConv2D is a deliberately naive reference convolution used to validate
// the optimized kernel.
func refConv2D(in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs) *tensor.Tensor {
	n, inH, inW := in.Dim(0), in.Dim(2), in.Dim(3)
	g := a.Groups
	if g == 0 {
		g = 1
	}
	icg, ocg := a.InC/g, a.OutC/g
	outH := (inH+2*a.PH-a.KH)/a.SH + 1
	outW := (inW+2*a.PW-a.KW)/a.SW + 1
	out := tensor.New(n, a.OutC, outH, outW)
	for bi := 0; bi < n; bi++ {
		for oc := 0; oc < a.OutC; oc++ {
			grp := oc / ocg
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					acc := float32(0)
					if b != nil {
						acc = b.Data[oc]
					}
					for ic := 0; ic < icg; ic++ {
						for r := 0; r < a.KH; r++ {
							for q := 0; q < a.KW; q++ {
								ih := oh*a.SH - a.PH + r
								iw := ow*a.SW - a.PW + q
								if ih < 0 || ih >= inH || iw < 0 || iw >= inW {
									continue
								}
								acc += in.At(bi, grp*icg+ic, ih, iw) * w.At(oc, ic, r, q)
							}
						}
					}
					out.Set(acc, bi, oc, oh, ow)
				}
			}
		}
	}
	return out
}

func randT(r *tensor.RNG, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillNormal(r, 0, 1)
	return t
}

func TestConv2DMatchesReference(t *testing.T) {
	r := tensor.NewRNG(1)
	cases := []*ir.ConvAttrs{
		{InC: 3, OutC: 8, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1},
		{InC: 4, OutC: 6, KH: 5, KW: 5, SH: 2, SW: 2, PH: 2, PW: 2, Groups: 1},
		{InC: 4, OutC: 4, KH: 3, KW: 3, SH: 1, SW: 1, PH: 0, PW: 0, Groups: 4}, // depthwise
		{InC: 6, OutC: 8, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 2},
		{InC: 5, OutC: 7, KH: 3, KW: 1, SH: 1, SW: 1, PH: 1, PW: 0, Groups: 1}, // asymmetric (TT core)
	}
	for i, a := range cases {
		in := randT(r, 2, a.InC, 9, 9)
		w := randT(r, a.OutC, a.InC/maxInt(a.Groups, 1), a.KH, a.KW)
		b := randT(r, a.OutC)
		ref := refConv2D(in, w, b, a)
		out := tensor.New(ref.Shape...)
		Conv2D(out, in, w, b, a)
		if d := tensor.MaxAbsDiff(out, ref); d > 1e-4 {
			t.Errorf("case %d: conv deviates from reference by %v", i, d)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestLinearKnown(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	w := tensor.FromSlice([]float32{1, 0, 0, 0, 1, 1}, 2, 3)
	b := tensor.FromSlice([]float32{10, 20}, 2)
	out := tensor.New(1, 2)
	Linear(out, in, w, b, &ir.LinearAttrs{In: 3, Out: 2})
	if out.Data[0] != 11 || out.Data[1] != 25 {
		t.Fatalf("Linear = %v", out.Data)
	}
}

func TestActivations(t *testing.T) {
	in := tensor.FromSlice([]float32{-2, 0, 3}, 3)
	out := tensor.New(3)
	ReLU(out, in)
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 3 {
		t.Fatalf("ReLU = %v", out.Data)
	}
	Sigmoid(out, in)
	if math.Abs(float64(out.Data[1])-0.5) > 1e-6 {
		t.Fatalf("Sigmoid(0) = %v", out.Data[1])
	}
	SiLU(out, in)
	want := float32(3) * sigmoid32(3)
	if math.Abs(float64(out.Data[2]-want)) > 1e-6 {
		t.Fatalf("SiLU(3) = %v, want %v", out.Data[2], want)
	}
}

func TestBatchNorm(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 1, 2) // 2 channels of 2 px
	scale := tensor.FromSlice([]float32{2, 10}, 2)
	shift := tensor.FromSlice([]float32{1, 0}, 2)
	out := tensor.New(1, 2, 1, 2)
	BatchNorm(out, in, scale, shift)
	want := []float32{3, 5, 30, 40}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("BatchNorm = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxAvgPool(t *testing.T) {
	in := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	a := &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2}
	out := tensor.New(1, 1, 2, 2)
	MaxPool(out, in, a)
	if out.Data[0] != 6 || out.Data[1] != 8 || out.Data[2] != 14 || out.Data[3] != 16 {
		t.Fatalf("MaxPool = %v", out.Data)
	}
	AvgPool(out, in, a)
	if out.Data[0] != 3.5 || out.Data[3] != 13.5 {
		t.Fatalf("AvgPool = %v", out.Data)
	}
}

func TestOverlappingMaxPool(t *testing.T) {
	// AlexNet-style 3×3 stride-2 pooling.
	r := tensor.NewRNG(5)
	in := randT(r, 1, 2, 7, 7)
	a := &ir.PoolAttrs{KH: 3, KW: 3, SH: 2, SW: 2}
	out := tensor.New(1, 2, 3, 3)
	MaxPool(out, in, a)
	// Check one window by hand.
	var m float32 = float32(math.Inf(-1))
	for r0 := 0; r0 < 3; r0++ {
		for c0 := 0; c0 < 3; c0++ {
			if v := in.At(0, 1, 2+r0, 4+c0); v > m {
				m = v
			}
		}
	}
	if out.At(0, 1, 1, 2) != m {
		t.Fatalf("overlapping pool window wrong: %v vs %v", out.At(0, 1, 1, 2), m)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 3, 5, 7, 2, 2, 2, 2}, 1, 2, 2, 2)
	out := tensor.New(1, 2, 1, 1)
	GlobalAvgPool(out, in)
	if out.Data[0] != 4 || out.Data[1] != 2 {
		t.Fatalf("GlobalAvgPool = %v", out.Data)
	}
}

func TestUpsample(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := tensor.New(1, 1, 4, 4)
	Upsample(out, in, 2)
	want := []float32{1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("Upsample = %v", out.Data)
		}
	}
}

func TestConcat(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 1, 1, 2) // batch 2
	b := tensor.FromSlice([]float32{5, 6, 7, 8}, 2, 1, 1, 2)
	out := tensor.New(2, 2, 1, 2)
	Concat(out, []*tensor.Tensor{a, b})
	want := []float32{1, 2, 5, 6, 3, 4, 7, 8}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("Concat = %v, want %v", out.Data, want)
		}
	}
}

func TestSoftmax(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	out := tensor.New(2, 3)
	Softmax(out, in)
	var s float32
	for _, v := range out.Data[:3] {
		s += v
	}
	if math.Abs(float64(s)-1) > 1e-5 {
		t.Fatalf("softmax row does not sum to 1: %v", s)
	}
	// Large inputs must not overflow (stability).
	for _, v := range out.Data[3:] {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)-1.0/3) > 1e-5 {
			t.Fatalf("softmax unstable: %v", out.Data[3:])
		}
	}
	if out.Data[2] <= out.Data[1] || out.Data[1] <= out.Data[0] {
		t.Fatalf("softmax not monotone: %v", out.Data[:3])
	}
}

// fusedReference computes lconv→act→[pool]→fconv through the individual
// kernels, materializing the intermediates the fused kernel avoids.
func fusedReference(in *tensor.Tensor, a *ir.FusedAttrs) *tensor.Tensor {
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	lattrs := &ir.ConvAttrs{InC: a.InC, OutC: a.MidC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
	mid := tensor.New(n, a.MidC, h, w)
	Conv2D(mid, in, a.LW, a.LB, lattrs)
	act := tensor.New(n, a.MidC, h, w)
	switch a.Act {
	case ir.KindReLU:
		ReLU(act, mid)
	case ir.KindSiLU:
		SiLU(act, mid)
	case ir.KindSigmoid:
		Sigmoid(act, mid)
	default:
		copy(act.Data, mid.Data)
	}
	post := act
	if a.Pool != nil {
		oh := (h+2*a.Pool.PH-a.Pool.KH)/a.Pool.SH + 1
		ow := (w+2*a.Pool.PW-a.Pool.KW)/a.Pool.SW + 1
		pooled := tensor.New(n, a.MidC, oh, ow)
		if a.PoolKind == ir.KindMaxPool {
			MaxPool(pooled, act, a.Pool)
		} else {
			AvgPool(pooled, act, a.Pool)
		}
		post = pooled
	}
	if a.FW == nil {
		// Tail fusion: the chain ends at the restored tensor.
		return post
	}
	fattrs := &ir.ConvAttrs{InC: a.MidC, OutC: a.OutC, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1}
	out := tensor.New(n, a.OutC, post.Dim(2), post.Dim(3))
	Conv2D(out, post, a.FW, a.FB, fattrs)
	return out
}

func fusedCase(r *tensor.RNG, act ir.Kind, pool *ir.PoolAttrs, poolKind ir.Kind, inC, midC, outC int) *ir.FusedAttrs {
	a := &ir.FusedAttrs{
		InC: inC, MidC: midC, OutC: outC, Act: act, Pool: pool, PoolKind: poolKind,
		LW: randT(r, midC, inC, 1, 1), LB: randT(r, midC),
		FW: randT(r, outC, midC, 1, 1), FB: randT(r, outC),
	}
	return a
}

// TestFusedMatchesUnfused is the core fusion-correctness test (paper §3.2):
// the fused kernel must be numerically equivalent to running the three (or
// four) layers separately.
func TestFusedMatchesUnfused(t *testing.T) {
	r := tensor.NewRNG(7)
	cases := []struct {
		name     string
		act      ir.Kind
		pool     *ir.PoolAttrs
		poolKind ir.Kind
		h, w     int
	}{
		{"relu-nopool", ir.KindReLU, nil, 0, 11, 13},
		{"silu-nopool", ir.KindSiLU, nil, 0, 8, 8},
		{"sigmoid-nopool", ir.KindSigmoid, nil, 0, 5, 5},
		{"relu-maxpool2", ir.KindReLU, &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2}, ir.KindMaxPool, 16, 16},
		{"relu-maxpool2-odd", ir.KindReLU, &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2}, ir.KindMaxPool, 18, 14},
		{"relu-maxpool3s2", ir.KindReLU, &ir.PoolAttrs{KH: 3, KW: 3, SH: 2, SW: 2}, ir.KindMaxPool, 17, 17},
		{"relu-avgpool2", ir.KindReLU, &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2}, ir.KindAvgPool, 12, 12},
		{"silu-maxpool-pad", ir.KindSiLU, &ir.PoolAttrs{KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1}, ir.KindMaxPool, 15, 15},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := fusedCase(r, c.act, c.pool, c.poolKind, 6, 24, 5)
			in := randT(r, 2, a.InC, c.h, c.w)
			ref := fusedReference(in, a)
			out := tensor.New(ref.Shape...)
			Fused(out, in, a)
			if d := tensor.MaxAbsDiff(out, ref); d > 1e-3 {
				t.Fatalf("fused deviates from unfused by %v", d)
			}
		})
	}
}

func TestFusedWorkspaceIsSmall(t *testing.T) {
	a := fusedCase(tensor.NewRNG(3), ir.KindReLU,
		&ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2}, ir.KindMaxPool, 8, 256, 8)
	ws := FusedWorkspaceBytes(a)
	// Full intermediates for a 64×64 map would be 256·64·64·4 ≈ 4.2 MB per
	// image; the workspace must be far below that and independent of H·W.
	full := int64(256 * 64 * 64 * 4)
	if ws >= full/4 {
		t.Fatalf("workspace %d bytes is not small vs full intermediate %d", ws, full)
	}
}

// Property: fused == unfused for random shapes/activations/pooling.
func TestQuickFusedEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		acts := []ir.Kind{ir.KindReLU, ir.KindSiLU, ir.KindSigmoid}
		act := acts[r.Intn(len(acts))]
		var pool *ir.PoolAttrs
		poolKind := ir.Kind(0)
		if r.Intn(2) == 0 {
			k := 2 + r.Intn(2)
			pool = &ir.PoolAttrs{KH: k, KW: k, SH: 2, SW: 2}
			if r.Intn(2) == 0 {
				poolKind = ir.KindMaxPool
			} else {
				poolKind = ir.KindAvgPool
			}
		}
		inC, midC, outC := 1+r.Intn(6), 4+r.Intn(24), 1+r.Intn(6)
		h, w := 4+r.Intn(16), 4+r.Intn(16)
		if pool != nil && (h < pool.KH || w < pool.KW) {
			h, w = h+pool.KH, w+pool.KW
		}
		a := fusedCase(r, act, pool, poolKind, inC, midC, outC)
		in := randT(r, 1+r.Intn(2), inC, h, w)
		ref := fusedReference(in, a)
		out := tensor.New(ref.Shape...)
		Fused(out, in, a)
		return tensor.MaxAbsDiff(out, ref) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Conv2D with a 1×1 identity kernel is the identity map.
func TestQuickConvIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		c := 1 + r.Intn(5)
		h, w := 2+r.Intn(6), 2+r.Intn(6)
		in := randT(r, 1, c, h, w)
		wt := tensor.New(c, c, 1, 1)
		for i := 0; i < c; i++ {
			wt.Set(1, i, i, 0, 0)
		}
		out := tensor.New(1, c, h, w)
		Conv2D(out, in, wt, nil, &ir.ConvAttrs{InC: c, OutC: c, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1})
		return tensor.MaxAbsDiff(out, in) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: convolution is linear in its input.
func TestQuickConvLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		a := &ir.ConvAttrs{InC: 2, OutC: 3, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1}
		w := randT(r, 3, 2, 3, 3)
		x := randT(r, 1, 2, 6, 6)
		y := randT(r, 1, 2, 6, 6)
		xy := tensor.New(1, 2, 6, 6)
		tensor.AddInto(xy, x, y)
		ox, oy, oxy := tensor.New(1, 3, 6, 6), tensor.New(1, 3, 6, 6), tensor.New(1, 3, 6, 6)
		Conv2D(ox, x, w, nil, a)
		Conv2D(oy, y, w, nil, a)
		Conv2D(oxy, xy, w, nil, a)
		sum := tensor.New(1, 3, 6, 6)
		tensor.AddInto(sum, ox, oy)
		return tensor.MaxAbsDiff(oxy, sum) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	seen := make([]int32, 1000)
	parallelFor(1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	parallelFor(0, func(lo, hi int) { t.Error("must not be called for n=0") })
}

// TestTailFusionMatchesUnfused checks the FW==nil tail-fusion path: the
// kernel must emit exactly the restored (activated, pooled) tensor.
func TestTailFusionMatchesUnfused(t *testing.T) {
	r := tensor.NewRNG(31)
	cases := []struct {
		name     string
		pool     *ir.PoolAttrs
		poolKind ir.Kind
	}{
		{"nopool", nil, 0},
		{"maxpool", &ir.PoolAttrs{KH: 3, KW: 3, SH: 2, SW: 2, PH: 1, PW: 1}, ir.KindMaxPool},
		{"avgpool", &ir.PoolAttrs{KH: 2, KW: 2, SH: 2, SW: 2}, ir.KindAvgPool},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := &ir.FusedAttrs{
				InC: 5, MidC: 24, OutC: 24, Act: ir.KindReLU,
				Pool: c.pool, PoolKind: c.poolKind,
				LW: randT(r, 24, 5, 1, 1), LB: randT(r, 24),
			}
			in := randT(r, 2, 5, 13, 13)
			ref := fusedReference(in, a)
			out := tensor.New(ref.Shape...)
			Fused(out, in, a)
			if d := tensor.MaxAbsDiff(out, ref); d > 1e-3 {
				t.Fatalf("tail fusion deviates by %v", d)
			}
		})
	}
}

// TestIm2colMatchesDirect: the GEMM lowering must agree with the direct
// kernel over strides, padding, and asymmetric kernels.
func TestIm2colMatchesDirect(t *testing.T) {
	r := tensor.NewRNG(41)
	cases := []*ir.ConvAttrs{
		{InC: 3, OutC: 8, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 1},
		{InC: 8, OutC: 4, KH: 5, KW: 5, SH: 2, SW: 2, PH: 2, PW: 2, Groups: 1},
		{InC: 6, OutC: 6, KH: 3, KW: 1, SH: 2, SW: 1, PH: 1, PW: 0, Groups: 1},
		{InC: 5, OutC: 7, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 1},
		{InC: 4, OutC: 4, KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1, Groups: 4}, // grouped → fallback
	}
	for i, a := range cases {
		in := randT(r, 2, a.InC, 11, 9)
		w := randT(r, a.OutC, a.InC/maxInt(a.Groups, 1), a.KH, a.KW)
		b := randT(r, a.OutC)
		oh := (11+2*a.PH-a.KH)/a.SH + 1
		ow := (9+2*a.PW-a.KW)/a.SW + 1
		want := tensor.New(2, a.OutC, oh, ow)
		Conv2D(want, in, w, b, a)
		got := tensor.New(2, a.OutC, oh, ow)
		Conv2DIm2col(got, in, w, b, a)
		if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
			t.Errorf("case %d: im2col deviates by %v", i, d)
		}
		auto := tensor.New(2, a.OutC, oh, ow)
		ConvAuto(auto, in, w, b, a)
		if d := tensor.MaxAbsDiff(auto, want); d > 1e-4 {
			t.Errorf("case %d: ConvAuto deviates by %v", i, d)
		}
	}
}

// Property: im2col == direct on random configurations.
func TestQuickIm2colEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		a := &ir.ConvAttrs{
			InC: 1 + r.Intn(6), OutC: 1 + r.Intn(6),
			KH: 1 + r.Intn(4), KW: 1 + r.Intn(4),
			SH: 1 + r.Intn(2), SW: 1 + r.Intn(2),
			Groups: 1,
		}
		a.PH, a.PW = r.Intn(a.KH), r.Intn(a.KW)
		h, w := a.KH+r.Intn(8), a.KW+r.Intn(8)
		in := randT(r, 1+r.Intn(2), a.InC, h, w)
		wt := randT(r, a.OutC, a.InC, a.KH, a.KW)
		oh := (h+2*a.PH-a.KH)/a.SH + 1
		ow := (w+2*a.PW-a.KW)/a.SW + 1
		want := tensor.New(in.Dim(0), a.OutC, oh, ow)
		Conv2D(want, in, wt, nil, a)
		got := tensor.New(in.Dim(0), a.OutC, oh, ow)
		Conv2DIm2col(got, in, wt, nil, a)
		return tensor.MaxAbsDiff(got, want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
