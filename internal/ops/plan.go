package ops

import (
	"context"

	"temco/internal/gemm"
	"temco/internal/ir"
	"temco/internal/tensor"
)

// Compile-time kernel plans. ConvAutoCtx re-derives the kernel choice,
// re-packs the weight panels, and re-computes the im2col gather geometry on
// every call; for a graph executed many times all of that is a function of
// the node alone. PlanConv/PlanFused hoist it out of the run loop, and the
// *PlannedCtx kernels consume the prepared plan. Planned execution is
// bit-identical to the auto path: the plan replicates ConvAutoCtx's
// dispatch thresholds exactly and the pre-packed GEMMs share the blocked
// core's schedule.

// convKernel names the kernel a ConvPlan selected.
type convKernel uint8

const (
	convDirect convKernel = iota
	convPointwise
	convIm2col
)

// ConvPlan is the prepared execution of one Conv2D node at fixed spatial
// dimensions: kernel choice, GEMM geometry, the im2col gather table, and
// the pre-packed weight panels.
type ConvPlan struct {
	kernel convKernel
	// rows/cols are the per-batch-element GEMM dimensions: W[OutC × rows] ·
	// col[rows × cols] for im2col, W[OutC × InC] · in[InC × cols] pointwise.
	rows, cols int
	// idx is the per-channel im2col gather table, [KH·KW·cols] input-plane
	// offsets with -1 marking padding positions.
	idx []int32
	// pw is the weight pre-packed as the GEMM's A operand (GEMM paths only).
	pw *gemm.PackedA
}

// PackedBytes reports the plan's resident footprint (packed panels plus
// gather table), for engine statistics.
func (p *ConvPlan) PackedBytes() int64 {
	var b int64
	if p.pw != nil {
		b += p.pw.Bytes()
	}
	return b + int64(len(p.idx))*4
}

// PlanConv prepares a Conv2D with input plane inH×inW and output plane
// outH×outW. The kernel choice replicates ConvAutoCtx's dispatch
// thresholds exactly, so planned and auto execution pick the same kernel.
func PlanConv(a *ir.ConvAttrs, w *tensor.Tensor, inH, inW, outH, outW int) *ConvPlan {
	g := a.Groups
	if g == 0 {
		g = 1
	}
	outHW := outH * outW
	p := &ConvPlan{}
	switch {
	case is1x1Pointwise(a) && outHW*a.InC >= 256:
		p.kernel = convPointwise
		p.rows, p.cols = a.InC, outHW
		p.pw = gemm.PackA(a.OutC, a.InC, w.Data, a.InC)
	case g == 1 && a.KH*a.KW > 1 && outHW >= 64 && a.InC >= 4:
		p.kernel = convIm2col
		p.rows, p.cols = a.InC*a.KH*a.KW, outHW
		p.pw = gemm.PackA(a.OutC, p.rows, w.Data, p.rows)
		p.idx = im2colIndex(inH, inW, outH, outW, a)
	default:
		p.kernel = convDirect
	}
	return p
}

// ConvPlannedCtx executes a planned convolution; out/in must have the
// spatial dimensions the plan was built for (any batch size). A nil plan
// falls back to ConvAutoCtx. Same cancellation contract as ConvAutoCtx.
func ConvPlannedCtx(ctx context.Context, out, in *tensor.Tensor, w, b *tensor.Tensor, a *ir.ConvAttrs, p *ConvPlan) error {
	if p == nil {
		return ConvAutoCtx(ctx, out, in, w, b, a)
	}
	switch p.kernel {
	case convPointwise:
		return conv1x1PlannedCtx(ctx, out, in, b, p)
	case convIm2col:
		return im2colPlannedCtx(ctx, out, in, b, p)
	default:
		return conv2DCtx(ctx, out, in, w, b, a)
	}
}

// conv1x1PlannedCtx mirrors conv2D1x1Ctx with the weight pre-packed.
func conv1x1PlannedCtx(ctx context.Context, out, in *tensor.Tensor, b *tensor.Tensor, p *ConvPlan) error {
	n := in.Dim(0)
	inC := in.Dim(1)
	hw := in.Dim(2) * in.Dim(3)
	outC := out.Dim(1)
	if n >= Workers && Workers > 1 {
		return parallelForCtx(ctx, n, func(lo, hi int) {
			for bi := lo; bi < hi; bi++ {
				cSlab := out.Data[bi*outC*hw : (bi+1)*outC*hw]
				beta := biasFill(cSlab, hw, b)
				gemm.SerialPackedA(hw, 1, p.pw, in.Data[bi*inC*hw:(bi+1)*inC*hw], hw, beta, cSlab, hw)
			}
		})
	}
	for bi := 0; bi < n; bi++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cSlab := out.Data[bi*outC*hw : (bi+1)*outC*hw]
		beta := biasFill(cSlab, hw, b)
		gemm.GemmPackedA(hw, 1, p.pw, in.Data[bi*inC*hw:(bi+1)*inC*hw], hw, beta, cSlab, hw)
	}
	return nil
}

// im2colPlannedCtx mirrors conv2DIm2colCtx with the weight pre-packed and
// the window unfold driven by the plan's gather table instead of
// re-deriving offsets per call.
func im2colPlannedCtx(ctx context.Context, out, in *tensor.Tensor, b *tensor.Tensor, p *ConvPlan) error {
	n := in.Dim(0)
	inC := in.Dim(1)
	inHW := in.Dim(2) * in.Dim(3)
	outC := out.Dim(1)
	rows, cols := p.rows, p.cols
	if n >= Workers && Workers > 1 {
		return parallelForCtx(ctx, n, func(lo, hi int) {
			colPtr := gemm.GetF32(rows * cols)
			for bi := lo; bi < hi; bi++ {
				im2colIndexed(*colPtr, in, bi, inC, inHW, p.idx)
				cSlab := out.Data[bi*outC*cols : (bi+1)*outC*cols]
				beta := biasFill(cSlab, cols, b)
				gemm.SerialPackedA(cols, 1, p.pw, *colPtr, cols, beta, cSlab, cols)
			}
			gemm.PutF32(colPtr)
		})
	}
	colPtr := gemm.GetF32(rows * cols)
	for bi := 0; bi < n; bi++ {
		if err := ctx.Err(); err != nil {
			gemm.PutF32(colPtr)
			return err
		}
		im2colIndexed(*colPtr, in, bi, inC, inHW, p.idx)
		cSlab := out.Data[bi*outC*cols : (bi+1)*outC*cols]
		beta := biasFill(cSlab, cols, b)
		gemm.GemmPackedA(cols, 1, p.pw, *colPtr, cols, beta, cSlab, cols)
	}
	gemm.PutF32(colPtr)
	return nil
}

// im2colIndex precomputes the window-unfold gather table: entry
// ((r·KW+q)·cols + oh·outW + ow) holds the input-plane offset feeding
// column (oh,ow) of kernel tap (r,q), or -1 at padding. The table is
// channel-independent; im2colIndexed replays it per input channel.
func im2colIndex(inH, inW, outH, outW int, a *ir.ConvAttrs) []int32 {
	cols := outH * outW
	idx := make([]int32, a.KH*a.KW*cols)
	i := 0
	for r := 0; r < a.KH; r++ {
		for q := 0; q < a.KW; q++ {
			for oh := 0; oh < outH; oh++ {
				ih := oh*a.SH - a.PH + r
				for ow := 0; ow < outW; ow++ {
					iw := ow*a.SW - a.PW + q
					if ih < 0 || ih >= inH || iw < 0 || iw >= inW {
						idx[i] = -1
					} else {
						idx[i] = int32(ih*inW + iw)
					}
					i++
				}
			}
		}
	}
	return idx
}

// im2colIndexed unfolds one batch element through the gather table,
// producing exactly the [InC·KH·KW, outH·outW] column matrix im2col builds.
func im2colIndexed(colBuf []float32, in *tensor.Tensor, bi, inC, inHW int, idx []int32) {
	kl := len(idx)
	for ic := 0; ic < inC; ic++ {
		src := in.Data[(bi*inC+ic)*inHW:][:inHW]
		dst := colBuf[ic*kl : (ic+1)*kl]
		for i, o := range idx {
			if o >= 0 {
				dst[i] = src[o]
			} else {
				dst[i] = 0
			}
		}
	}
}

// FusedPlan pre-packs a fused node's lconv and fconv weights as the A
// operands of the per-tile GEMMs.
type FusedPlan struct {
	lw, fw *gemm.PackedA // fw is nil for tail fusion (no fconv)
}

// PackedBytes reports the plan's resident packed-panel footprint.
func (p *FusedPlan) PackedBytes() int64 {
	b := p.lw.Bytes()
	if p.fw != nil {
		b += p.fw.Bytes()
	}
	return b
}

// PlanFused prepares a fused lconv→act→[pool]→fconv node.
func PlanFused(a *ir.FusedAttrs) *FusedPlan {
	p := &FusedPlan{lw: gemm.PackA(a.MidC, a.InC, a.LW.Data, a.InC)}
	if a.FW != nil {
		p.fw = gemm.PackA(a.OutC, a.MidC, a.FW.Data, a.MidC)
	}
	return p
}
